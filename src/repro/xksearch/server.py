"""The demo web server, grown into a small serving layer.

The original XKSearch demo ran as a Java Servlet under Tomcat; this is the
equivalent zero-dependency server: ``xksearch serve <index_dir>`` starts a
**threaded** HTTP server whose ``/search?q=…`` endpoint runs the engine and
renders the results page from :mod:`repro.xksearch.html`.

Serving-layer features (beyond the paper's demo):

* **concurrency** — requests are handled on worker threads
  (``ThreadingHTTPServer``); the number of concurrently *executing*
  requests is capped by a semaphore (``max_workers``).  The underlying
  index read path is thread-safe (the buffer pool serializes page
  access), so queries genuinely overlap;
* **caching** — the system is normally opened with a
  :class:`~repro.xksearch.cache.QueryCache`, so repeated queries are
  answered from memory (``xksearch serve --cache-size``);
* **process-pool execution** — ``--workers-proc N`` moves cache-miss
  query execution past the GIL into N forked worker processes reading
  the index through shared memory maps, with a cross-process shared
  result cache (see :mod:`repro.xksearch.parallel` and
  docs/PERFORMANCE.md, "Scaling past the GIL");
* **observability** (see docs/OBSERVABILITY.md) — every request is timed
  and counted in the process-global metrics registry; ``GET /metrics``
  exposes Prometheus text format covering server, cache, buffer-pool,
  pager and algorithm-counter metrics; ``/statz`` returns the same as
  structured JSON plus latency percentiles; every search response carries
  ``X-Response-Time-Ms`` and an ``X-Trace-Id`` (client-provided or
  generated), slow requests land in ``/debug/slow``, and
  ``/api/search?explain=1`` returns the per-phase EXPLAIN breakdown;
* **a JSON API** — ``GET /api/search?q=…`` returns bare Dewey ids plus
  plan/timing metadata, the endpoint load generators and programmatic
  clients (``benchmarks/bench_qps.py``) use;
* **robustness** (see docs/ROBUSTNESS.md) — requests can carry an
  end-to-end deadline (``X-Deadline-Ms`` header, ``?timeout_ms=``, or
  ``serve --default-timeout-ms``) that is checked cooperatively through
  the algorithm loops and across the worker pool; expiry produces a
  structured 504 and counts ``xks_deadline_exceeded_total{phase}``.
  An :class:`~repro.robustness.admission.AdmissionGate` sheds work with
  429 + ``Retry-After`` at in-flight/latency watermarks (cheap |S1|
  bands are admitted preferentially), and SIGTERM drains in-flight
  requests before the exporters flush and the pool closes.

Endpoints:

* ``GET /`` — search form;
* ``GET /search?q=<keywords>[&algorithm=auto|il|scan|stack]`` — HTML results;
* ``GET /api/search?q=<keywords>[&algorithm=…][&limit=N][&explain=1]`` —
  JSON results (+ EXPLAIN breakdown with ``explain=1``);
* ``GET /statz`` — serving metrics (JSON);
* ``GET /metrics`` — Prometheus text exposition (with OpenMetrics
  exemplars on histogram buckets that saw a traced request);
* ``GET /debug/slow[?limit=N][&clear=1]`` — bounded slow-query log plus
  current execution-histogram exemplars (JSON); ``clear`` returns the
  entries it removes;
* ``GET /alertz`` — SLO status and alert state machines (JSON): per-SLO
  error budget, burn rates over the paired alerting windows, and every
  alert's ``ok/pending/firing/resolved`` state (see
  :mod:`repro.obs.slo` and docs/OBSERVABILITY.md, "SLOs and alerting");
* ``GET /debug/pprof[?seconds=N][&fleet=1][&format=folded]`` — sampling-
  profiler flamegraph stacks (``serve --profile-hz``): cumulative, or
  only the next N seconds; ``fleet=1`` merges the pool workers' stacks
  in; ``format=folded`` returns collapsed text for ``flamegraph.pl``;
* ``GET /debug/heap[?start=1|stop=1][&top=N][&fleet=1]`` — tracemalloc
  heap snapshot (top allocation sites by live size) with explicit
  start/stop of tracking, plus the workers' heap summaries;
* ``GET /healthz`` — liveness (plain text).

With an exporter attached (``serve --export-jsonl FILE`` or
``--export-url URL``) every finished request trace is enqueued to a
background flusher; delivery failures retry with backoff and are
eventually dropped and counted — the request path never blocks on the
collector.  ``--log-json`` (or ``REPRO_LOG_LEVEL``) turns on structured
logs correlated to ``X-Trace-Id`` (see :mod:`repro.obs.logging`).
"""

from __future__ import annotations

import json
import os
import platform
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence
from urllib.parse import parse_qs, urlparse

from repro import __version__
from repro.errors import DeadlineExceeded, ReproError
from repro.robustness import faultinject
from repro.robustness.admission import AdmissionGate
from repro.robustness.deadline import Deadline, bind_deadline
from repro.obs.export import (
    DEFAULT_HTTP_TIMEOUT,
    HttpCollectorSink,
    JsonlFileSink,
    SnapshotShipper,
    TraceExporter,
)
from repro.obs.logging import (
    configure_logging,
    get_logger,
    reset_current_trace_id,
    set_current_trace_id,
    set_log_sampling,
)
from repro.obs.slo import SLOEngine, WindowPolicy, default_slos, parse_slo
from repro.obs.fleet import FleetCollector
from repro.obs.metrics import (
    MetricsRegistry,
    Sample,
    exponential_buckets,
    get_registry,
)
from repro.obs.profiling import (
    SamplingProfiler,
    heap_snapshot,
    heap_tracking_active,
    merge_folded,
    render_folded,
    start_heap_tracking,
    stop_heap_tracking,
)
from repro.obs.tracing import (
    Span,
    Trace,
    Tracer,
    new_trace_id,
    span_from_dict,
    valid_trace_id,
)
from repro.xksearch.cache import QueryCache
from repro.xksearch.engine import ExecutionStats
from repro.xksearch.html import render_page
from repro.xksearch.system import XKSearch

#: Default cap on concurrently executing requests.
DEFAULT_MAX_WORKERS = 8

#: Per-request latencies kept for the /statz percentiles (ring buffer).
_LATENCY_WINDOW = 4096

#: HTTP latency histogram buckets: 0.05 ms … ~26 s, factor 2.
_HTTP_BUCKETS_MS = exponential_buckets(0.05, 2.0, 20)

#: Endpoints that get their own label value; everything else is "other"
#: so label cardinality stays bounded.
_KNOWN_ENDPOINTS = (
    "/",
    "/search",
    "/api/search",
    "/statz",
    "/metrics",
    "/debug/slow",
    "/debug/pprof",
    "/debug/heap",
    "/healthz",
    "/alertz",
)

_log = get_logger("server")

#: Process start (wall clock) — the xks_uptime_seconds origin.
_PROCESS_START = time.time()


def build_info_collector():
    """Scrape-time ``xks_build_info`` / ``xks_uptime_seconds`` samples.

    A module-level function (not a closure) so repeated ``make_server``
    calls registering it dedup to one — it describes the *process*, not a
    server instance, and is intentionally never unregistered.
    """
    yield Sample(
        "xks_build_info",
        1.0,
        {
            "version": __version__,
            "python": platform.python_version(),
            "pid": str(os.getpid()),
        },
        help="Build/runtime identity (value is always 1; the labels carry "
        "the information).",
    )
    yield Sample(
        "xks_uptime_seconds",
        time.time() - _PROCESS_START,
        help="Seconds since process start.",
    )


def build_info_dict() -> dict:
    """The same identity block as JSON, for /statz."""
    return {
        "version": __version__,
        "python": platform.python_version(),
        "pid": os.getpid(),
        "uptime_s": round(time.time() - _PROCESS_START, 3),
    }


class ServerMetrics:
    """Thread-safe request counters and latency percentiles."""

    def __init__(self, window: int = _LATENCY_WINDOW):
        self._lock = threading.Lock()
        self._window = window
        self._latencies_ms: List[float] = []
        self.requests = 0
        self.errors = 0

    def record(self, elapsed_ms: float, error: bool = False) -> None:
        with self._lock:
            self.requests += 1
            if error:
                self.errors += 1
            self._latencies_ms.append(elapsed_ms)
            if len(self._latencies_ms) > self._window:
                del self._latencies_ms[: -self._window]

    @staticmethod
    def _percentile(sorted_values: List[float], q: float) -> float:
        if not sorted_values:
            return 0.0
        index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
        return sorted_values[index]

    def summary(self) -> dict:
        with self._lock:
            latencies = sorted(self._latencies_ms)
            requests, errors = self.requests, self.errors
        return {
            "requests": requests,
            "errors": errors,
            "window": len(latencies),
            "latency_ms": {
                "p50": round(self._percentile(latencies, 0.50), 3),
                "p90": round(self._percentile(latencies, 0.90), 3),
                "p99": round(self._percentile(latencies, 0.99), 3),
                "mean": round(sum(latencies) / len(latencies), 3) if latencies else 0.0,
            },
        }


def system_collector(system: XKSearch):
    """A scrape-time collector mirroring one system's component stats.

    Buffer pool, pager and B+tree counters exist only for disk-backed
    indexes; cache metrics only when the engine has a
    :class:`~repro.xksearch.cache.QueryCache`.  Registered by
    :func:`make_server`, unregistered on ``server_close``.
    """

    def collect():
        storage = system.storage_stats()
        if storage is not None:
            pool = storage["buffer_pool"]
            yield Sample(
                "xks_buffer_pool_hits_total", pool["hits"], kind="counter",
                help="Buffer-pool page hits.",
            )
            yield Sample(
                "xks_buffer_pool_misses_total", pool["misses"], kind="counter",
                help="Buffer-pool page misses (physical reads).",
            )
            yield Sample(
                "xks_buffer_pool_evictions_total", pool["evictions"], kind="counter",
                help="Buffer-pool LRU evictions.",
            )
            yield Sample(
                "xks_buffer_pool_hit_rate", pool["hit_rate"],
                help="Buffer-pool hit rate over process lifetime.",
            )
            pager = storage["pager"]
            yield Sample(
                "xks_pager_reads_total", pager["sequential_reads"],
                {"kind": "sequential"}, kind="counter",
                help="Physical page reads by access pattern.",
            )
            yield Sample(
                "xks_pager_reads_total", pager["random_reads"], {"kind": "random"},
                kind="counter",
            )
            yield Sample(
                "xks_pager_writes_total", pager["writes"], kind="counter",
                help="Physical page writes.",
            )
            for tree, reads in (
                ("il", storage["bptree"]["il_node_reads"]),
                ("scan", storage["bptree"]["scan_node_reads"]),
            ):
                yield Sample(
                    "xks_bptree_node_reads_total", reads, {"tree": tree},
                    kind="counter", help="B+tree node touches per tree.",
                )
            yield Sample(
                "xks_segment_active",
                1.0 if storage.get("posting_tier") == "segment" else 0.0,
                help="Whether reads currently use the packed posting "
                "segments (1) or the B+tree fallback (0).",
            )
            segments = storage.get("segments")
            if segments is not None:
                yield Sample(
                    "xks_segment_keywords", segments["keywords"],
                    help="Keywords with a packed posting segment.",
                )
                yield Sample(
                    "xks_segment_blocks_decoded_total", segments["decodes"],
                    kind="counter",
                    help="Posting blocks decoded from the segment mmap "
                    "(cache misses at both posting-cache layers).",
                )
                yield Sample(
                    "xks_segment_block_hits_total", segments["local_hits"],
                    {"layer": "local"}, kind="counter",
                    help="Decoded-block cache hits by layer.",
                )
                yield Sample(
                    "xks_segment_block_hits_total", segments["shared_hits"],
                    {"layer": "shared"}, kind="counter",
                )
            posting_cache = storage.get("posting_cache")
            if posting_cache is not None:
                yield Sample(
                    "xks_posting_cache_hits_total", posting_cache["hits"],
                    kind="counter",
                    help="Cross-process posting-block cache hits (this "
                    "process's view).",
                )
                yield Sample(
                    "xks_posting_cache_misses_total", posting_cache["misses"],
                    kind="counter",
                    help="Cross-process posting-block cache misses (this "
                    "process's view).",
                )
                yield Sample(
                    "xks_posting_cache_invalidations_total",
                    posting_cache["invalidations"], kind="counter",
                    help="Posting-block entries dropped on a generation "
                    "mismatch.",
                )
                yield Sample(
                    "xks_posting_cache_stores_total", posting_cache["stores"],
                    kind="counter",
                    help="Posting blocks admitted into the shared cache.",
                )
        shared = system.engine.shared
        if shared is not None:
            stats = shared.stats
            yield Sample(
                "xks_shared_cache_hits_total", stats.hits, kind="counter",
                help="Cross-process shared-cache hits (this process's view).",
            )
            yield Sample(
                "xks_shared_cache_misses_total", stats.misses, kind="counter",
                help="Cross-process shared-cache misses (this process's view).",
            )
            yield Sample(
                "xks_shared_cache_invalidations_total", stats.invalidations,
                kind="counter",
                help="Shared-cache entries dropped on a generation mismatch.",
            )
        pool = system.engine.pool
        if pool is not None:
            yield Sample(
                "xks_pool_workers", pool.alive,
                help="Live worker processes in the execution pool.",
            )
            yield Sample(
                "xks_pool_respawns_total", pool.respawns, kind="counter",
                help="Pool workers respawned after a failure.",
            )
        cache = system.engine.cache
        if cache is not None:
            for name, stats in (("results", cache.results.stats), ("plans", cache.plans.stats)):
                yield Sample(
                    "xks_query_cache_hits_total", stats.hits, {"cache": name},
                    kind="counter", help="Query-cache hits.",
                )
                yield Sample(
                    "xks_query_cache_misses_total", stats.misses, {"cache": name},
                    kind="counter", help="Query-cache misses.",
                )
                yield Sample(
                    "xks_query_cache_evictions_total", stats.evictions, {"cache": name},
                    kind="counter", help="Query-cache LRU evictions.",
                )
                yield Sample(
                    "xks_query_cache_invalidations_total", stats.invalidations,
                    {"cache": name}, kind="counter",
                    help="Query-cache generation invalidations.",
                )
            yield Sample(
                "xks_query_cache_entries", len(cache.results), {"cache": "results"},
                help="Live query-cache entries.",
            )
            yield Sample(
                "xks_query_cache_entries", len(cache.plans), {"cache": "plans"},
            )
        yield Sample(
            "xks_index_generation", system.engine.generation(),
            help="Current index mutation generation.",
        )

    return collect


def _attach_profile_spans(trace: Trace, profile) -> None:
    """Graft the engine's EXPLAIN phases onto a request trace as spans."""
    parent = Span("engine")
    parent.duration_ms = profile.total_ms
    for phase in profile.phases:
        child = Span(phase.name, phase.detail)
        child.duration_ms = phase.ms
        parent.children.append(child)
    trace.root.children.append(parent)
    trace.annotate(
        query=profile.query,
        algorithm=profile.algorithm,
        cache_hit=profile.cache_hit,
        result_count=profile.result_count,
    )


def _attach_worker_spans(trace: Trace, worker_spans: Sequence[dict]) -> None:
    """Graft the pool workers' span trees under the request trace.

    The worker serialized its spans (``Span.to_dict``) into the task
    reply; reconstituting them here makes the exported trace show the
    cross-process execution under the *serving* request's trace id.
    """
    for data in worker_spans:
        try:
            trace.root.children.append(span_from_dict(data))
        except (TypeError, ValueError):
            continue
    trace.annotate(pooled=True)


class _Handler(BaseHTTPRequestHandler):
    # Injected by make_server onto a per-server subclass:
    system: XKSearch = None
    metrics: ServerMetrics = None
    tracer: Tracer = None
    registry: MetricsRegistry = None
    exporter: Optional[TraceExporter] = None
    slo_engine: Optional[SLOEngine] = None
    fleet: Optional[FleetCollector] = None
    profiler: Optional[SamplingProfiler] = None
    gate: Optional[AdmissionGate] = None
    default_timeout_ms: Optional[float] = None
    quiet: bool = True
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt, *args):  # noqa: N802 (stdlib naming)
        if not self.quiet:
            super().log_message(fmt, *args)

    def do_GET(self):  # noqa: N802 (stdlib naming)
        started = time.perf_counter()
        url = urlparse(self.path)
        error = False
        self._trace: Optional[Trace] = None
        self._trace_id: Optional[str] = None
        self._slow_entry: Optional[dict] = None
        context_token = None
        if url.path in ("/search", "/api/search"):
            client_trace_id = self.headers.get("X-Trace-Id")
            if client_trace_id is not None and not valid_trace_id(client_trace_id):
                # A malformed id must not reach the slow log, exemplars or
                # the export stream — regenerate instead of adopting it.
                _log.warning(
                    "invalid_trace_id", header=client_trace_id[:64], path=url.path
                )
                client_trace_id = None
            explain = self._wants_explain(url)
            if self.tracer is not None:
                self._trace = self.tracer.start(
                    "request", trace_id=client_trace_id, force=explain
                )
            self._trace_id = (
                self._trace.trace_id if self._trace is not None
                else (client_trace_id or new_trace_id())
            )
            # Everything downstream (engine histograms/exemplars, cache and
            # engine log lines) correlates through this binding.
            context_token = set_current_trace_id(self._trace_id)
        self._shed = False
        try:
            deadline = (
                self._parse_deadline(url)
                if url.path in ("/search", "/api/search")
                else None
            )
            try:
                if deadline is not None:
                    with bind_deadline(deadline):
                        # Upfront check: a request that arrives already
                        # expired (client budget spent queueing, or the
                        # expired-deadline fault) must not start work the
                        # checkpoints may be too coarse to stop.
                        deadline.check("admission")
                        error = self._dispatch(url)
                else:
                    error = self._dispatch(url)
            except DeadlineExceeded as exc:
                # The ONLY place a deadline expiry is counted — workers
                # and engine fallbacks propagate, they never count — so
                # one expired request is one increment.
                error = True
                phase = exc.phase or "unknown"
                (self.registry or get_registry()).counter(
                    "xks_deadline_exceeded_total",
                    "Requests that ran out of deadline budget, by the "
                    "phase that noticed.",
                    labelnames=("phase",),
                ).labels(phase=phase).inc()
                _log.warning("deadline_exceeded", path=url.path, phase=phase)
                self._send_json(
                    504,
                    {
                        "error": "deadline exceeded",
                        "phase": phase,
                        "trace_id": self._trace_id,
                    },
                )
        finally:
            elapsed_ms = (time.perf_counter() - started) * 1000
            if self.metrics is not None:
                self.metrics.record(elapsed_ms, error=error)
            if (
                self.gate is not None
                and not self._shed
                and url.path in ("/search", "/api/search")
            ):
                # Shed requests are cheap by construction; feeding them
                # into the p99 window would talk the gate back open.
                self.gate.note_latency(elapsed_ms)
            self._record_request(url.path, elapsed_ms, error)
            if context_token is not None:
                reset_current_trace_id(context_token)

    def _dispatch(self, url) -> bool:
        """Route one request; returns True when it errored."""
        if url.path == "/healthz":
            self._send(200, "ok", content_type="text/plain; charset=utf-8")
        elif url.path == "/statz":
            self._send_json(200, self._statz())
        elif url.path == "/metrics":
            self._send(
                200,
                (self.registry or get_registry()).render(),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        elif url.path == "/alertz":
            self._send_json(200, self._alertz())
        elif url.path == "/debug/slow":
            return self._handle_debug_slow(url)
        elif url.path == "/debug/pprof":
            return self._handle_debug_pprof(url)
        elif url.path == "/debug/heap":
            return self._handle_debug_heap(url)
        elif url.path == "/":
            self._send(200, render_page("", []))
        elif url.path == "/search":
            return self._handle_search(url)
        elif url.path == "/api/search":
            return self._handle_api_search(url)
        else:
            self._send(404, render_page("", []), status_only_body="not found")
            return True
        return False

    def _parse_deadline(self, url) -> Optional[Deadline]:
        """The request's deadline: header > query param > server default.

        A malformed budget is ignored (logged) rather than rejected —
        deadlines are advisory protection, not part of the query
        contract.  The ``expired-deadline`` fault point substitutes an
        already-expired deadline to drill the whole 504 path.
        """
        raw = self.headers.get("X-Deadline-Ms")
        if raw is None:
            raw = (parse_qs(url.query).get("timeout_ms") or [None])[0]
        budget: Optional[float] = None
        if raw is not None:
            try:
                budget = float(raw)
                if budget <= 0:
                    raise ValueError
            except ValueError:
                _log.warning("bad_deadline_ms", value=str(raw)[:64])
                budget = None
        if budget is None and self.default_timeout_ms:
            budget = self.default_timeout_ms
        if faultinject.fire("expired-deadline") is not None:
            return Deadline.after_ms(0.0)
        return Deadline.after_ms(budget) if budget is not None else None

    def _admission_check(self, query: str, algorithm: str) -> Optional[str]:
        """Ask the gate whether to shed; returns the shed reason or None.

        The |S1| frequency band comes from the (cached) query plan — the
        cheap cost signal the paper's analysis is built on.  A query the
        planner rejects is banded cheapest: it will fail fast with a 400
        downstream, which is not worth shedding.
        """
        if self.gate is None:
            return None
        try:
            band = self.system.explain(query, algorithm=algorithm).band
        except ReproError:
            band = "0"
        return self.gate.decide(band)

    def _send_shed(self, reason: str) -> None:
        self._shed = True
        self._send_json(
            429,
            {
                "error": "overloaded",
                "reason": reason,
                "trace_id": self._trace_id,
            },
            extra_headers={"Retry-After": str(self.gate.retry_after_s)},
        )

    def _record_request(self, path: str, elapsed_ms: float, error: bool) -> None:
        registry = self.registry or get_registry()
        endpoint = path if path in _KNOWN_ENDPOINTS else "other"
        registry.counter(
            "xks_http_requests_total",
            "HTTP requests served, by endpoint and outcome.",
            labelnames=("endpoint", "status"),
        ).labels(endpoint=endpoint, status="error" if error else "ok").inc()
        registry.histogram(
            "xks_http_request_ms",
            "End-to-end HTTP request latency (ms).",
            labelnames=("endpoint",),
            buckets=_HTTP_BUCKETS_MS,
        ).labels(endpoint=endpoint).observe(elapsed_ms)
        if self._trace is not None:
            self._trace.finish()
        if self.tracer is not None and self._slow_entry is not None:
            self.tracer.note(elapsed_ms, self._slow_entry, self._trace)
        if self.exporter is not None and self._trace is not None:
            # Non-blocking: a full queue or a dead collector drops the span
            # (counted in xks_export_dropped_total), never the request.
            self.exporter.export_trace(self._trace)
        if _log.enabled_for("info"):
            _log.info(
                "request",
                path=endpoint,
                status="error" if error else "ok",
                elapsed_ms=round(elapsed_ms, 3),
            )

    @staticmethod
    def _wants_explain(url) -> bool:
        value = (parse_qs(url.query).get("explain") or [""])[0].lower()
        return value in ("1", "true", "yes")

    # -- endpoints -----------------------------------------------------------

    def _handle_search(self, url) -> bool:
        """HTML results page; returns True when the request errored."""
        params = parse_qs(url.query)
        query = (params.get("q") or [""])[0].strip()
        algorithm = (params.get("algorithm") or ["auto"])[0]
        if not query:
            self._send(200, render_page("", []))
            return False
        shed = self._admission_check(query, algorithm)
        if shed is not None:
            self._send_shed(shed)
            return True
        try:
            plan = self.system.explain(query, algorithm=algorithm)
            started = time.perf_counter()
            results = self.system.search(query, algorithm=algorithm, limit=50)
            elapsed_ms = (time.perf_counter() - started) * 1000
        except DeadlineExceeded:
            raise  # 504, handled (and counted) centrally in do_GET
        except ReproError as exc:
            self._send(400, render_page(query, [], title=f"error: {exc}"))
            return True
        self._slow_entry = {"path": "/search", "query": query, "algorithm": plan.algorithm}
        if self._trace is not None:
            self._trace.annotate(query=query, algorithm=plan.algorithm)
        self._send(
            200,
            render_page(query, results, plan=plan, elapsed_ms=elapsed_ms),
            elapsed_ms=elapsed_ms,
        )
        return False

    def _handle_api_search(self, url) -> bool:
        """JSON results; returns True when the request errored."""
        params = parse_qs(url.query)
        query = (params.get("q") or [""])[0].strip()
        algorithm = (params.get("algorithm") or ["auto"])[0]
        limit_raw = (params.get("limit") or [""])[0]
        explain = self._wants_explain(url)
        if not query:
            self._send_json(400, {"error": "missing query parameter q"})
            return True
        try:
            limit = int(limit_raw) if limit_raw else None
        except ValueError:
            self._send_json(400, {"error": f"bad limit {limit_raw!r}"})
            return True
        shed = self._admission_check(query, algorithm)
        if shed is not None:
            self._send_shed(shed)
            return True
        stats = ExecutionStats()
        # Traced requests get span detail from one of two sources: with a
        # worker pool the execution is dispatched cross-process and the
        # worker ships its span tree back (profiling in-thread would
        # bypass the pool — the EXPLAIN contract); without a pool the
        # EXPLAIN profile phases are grafted instead.  Explicit explain=1
        # always profiles in-thread.
        profiled = explain or (
            self._trace is not None and self.system.engine.pool is None
        )
        try:
            started = time.perf_counter()
            ids = list(
                self.system.search_ids(
                    query, algorithm=algorithm, stats=stats, profile=profiled
                )
            )
            elapsed_ms = (time.perf_counter() - started) * 1000
        except DeadlineExceeded:
            raise  # 504, handled (and counted) centrally in do_GET
        except ReproError as exc:
            self._send_json(400, {"error": str(exc)})
            return True
        except Exception as exc:  # noqa: BLE001 — the API's error contract
            # Anything unexpected still answers the JSON contract: a 500
            # envelope carrying the trace id, counted exactly once as
            # status="error" by the shared accounting in do_GET.
            _log.error(
                "internal_error",
                path="/api/search",
                error=f"{exc.__class__.__name__}: {exc}",
            )
            self._send_json(
                500,
                {
                    "error": f"internal error ({exc.__class__.__name__})",
                    "trace_id": self._trace_id,
                },
            )
            return True
        if limit is not None:
            ids = ids[:limit]
        payload = {
            "query": query,
            "algorithm": algorithm,
            "count": len(ids),
            "ids": [".".join(str(c) for c in dewey) for dewey in ids],
            "elapsed_ms": round(elapsed_ms, 3),
            "cached": stats.result_from_cache,
            "cache_hit": stats.cache_hit,
            "shared_hit": stats.shared_hits > 0,
            "counters": stats.counters.as_dict(),
            "trace_id": self._trace_id,
        }
        if explain and stats.profile is not None:
            payload["explain"] = stats.profile.as_dict()
        self._slow_entry = {
            "path": "/api/search",
            "query": query,
            "algorithm": algorithm,
            "cache_hit": stats.cache_hit,
        }
        if self._trace is not None and stats.profile is not None:
            _attach_profile_spans(self._trace, stats.profile)
        if self._trace is not None and stats.worker_spans:
            _attach_worker_spans(self._trace, stats.worker_spans)
        self._send_json(200, payload, elapsed_ms=elapsed_ms)
        return False

    def _alertz(self) -> dict:
        """The SLO/alert status payload (``GET /alertz``)."""
        if self.slo_engine is None:
            return {"enabled": False, "slos": [], "transitions": 0}
        return self.slo_engine.status()

    def _statz(self) -> dict:
        engine = self.system.engine
        payload = {
            "build": build_info_dict(),
            "server": self.metrics.summary() if self.metrics else {},
            "generation": engine.generation(),
            "cache": engine.cache.stats() if engine.cache is not None else None,
            "shared_cache": (
                engine.shared.stats_dict() if engine.shared is not None else None
            ),
            "pool": engine.pool.stats_dict() if engine.pool is not None else None,
            "storage": self.system.storage_stats(),
            "counters": engine.counter_totals(),
        }
        if self.tracer is not None:
            payload["tracing"] = {
                "sample_rate": self.tracer.sample_rate,
                "slow_threshold_ms": self.tracer.slow_threshold_ms,
                "slow_log_entries": len(self.tracer.slow_queries()),
            }
        if self.gate is not None:
            payload["admission"] = self.gate.stats_dict()
        engine_breaker = getattr(engine, "breaker", None)
        if engine_breaker is not None:
            payload["breaker"] = engine_breaker.stats_dict()
        if self.slo_engine is not None:
            payload["slo"] = self.slo_engine.summary()
        if self.fleet is not None:
            payload["fleet"] = self.fleet.statz_dict()
        if self.profiler is not None:
            payload["profiler"] = self.profiler.totals()
        return payload

    def _handle_debug_slow(self, url) -> bool:
        """Slow-log JSON; supports ``?limit=N`` and ``?clear=1``.

        ``clear`` returns the entries it removed, so a scrape-and-reset
        consumer never loses a window.  Returns True on a bad request.
        """
        params = parse_qs(url.query)
        limit_raw = (params.get("limit") or [""])[0]
        clear = (params.get("clear") or [""])[0].lower() in ("1", "true", "yes")
        limit: Optional[int] = None
        if limit_raw:
            try:
                limit = int(limit_raw)
                if limit < 0:
                    raise ValueError
            except ValueError:
                self._send_json(400, {"error": f"bad limit {limit_raw!r}"})
                return True
        if self.tracer is None:
            self._send_json(200, {"threshold_ms": None, "count": 0, "entries": []})
            return False
        entries = self.tracer.slow_queries()
        if clear:
            self.tracer.clear_slow_log()
        payload = {
            "threshold_ms": self.tracer.slow_threshold_ms,
            "count": len(entries),
            "entries": entries if limit is None else entries[:limit],
            "exemplars": self._exec_exemplars(),
        }
        if clear:
            payload["cleared"] = True
        self._send_json(200, payload)
        return False

    def _exec_exemplars(self) -> List[dict]:
        """Current xks_query_exec_ms exemplars — the same (trace_id, value)
        pairs the /metrics exposition renders, as JSON for correlation."""
        registry = self.registry or get_registry()
        metric = registry.get_metric("xks_query_exec_ms")
        out: List[dict] = []
        if metric is None:
            return out
        items = getattr(metric, "items", None)
        children = items() if callable(items) else [({}, metric)]
        for labels, child in children:
            exemplars = getattr(child, "exemplars", None)
            if not callable(exemplars):
                continue
            for le, (trace_id, value, ts) in sorted(exemplars().items()):
                out.append(
                    {
                        "labels": labels,
                        "le": le,
                        "trace_id": trace_id,
                        "value": round(value, 6),
                        "ts": round(ts, 3),
                    }
                )
        return out

    def _handle_debug_pprof(self, url) -> bool:
        """Folded flamegraph stacks from the sampling profiler.

        ``?seconds=N`` profiles only the *next* N seconds (the handler
        thread sleeps while the sampler runs — the request budget is the
        profile window); without it the cumulative stacks since startup
        are returned.  ``&fleet=1`` merges the pool workers' latest
        shipped stacks in; ``&format=folded`` renders collapsed text
        (``stack;stack;leaf count`` lines) for flamegraph tooling.
        """
        params = parse_qs(url.query)
        seconds_raw = (params.get("seconds") or [""])[0]
        want_fleet = (params.get("fleet") or [""])[0].lower() in ("1", "true", "yes")
        folded = (params.get("format") or [""])[0].lower() == "folded"
        seconds = 0.0
        if seconds_raw:
            try:
                seconds = float(seconds_raw)
                if seconds < 0 or seconds > 60:
                    raise ValueError
            except ValueError:
                self._send_json(
                    400, {"error": f"bad seconds {seconds_raw!r} (0..60)"}
                )
                return True
        if self.profiler is None or not self.profiler.running:
            self._send_json(
                200,
                {"enabled": False, "hint": "start with: serve --profile-hz HZ"},
            )
            return False
        if seconds > 0:
            stacks = self.profiler.collect_window(seconds)
        else:
            stacks = self.profiler.snapshot()
        if want_fleet and self.fleet is not None:
            stacks = merge_folded([stacks, self.fleet.merged_profile()])
        if folded:
            self._send(
                200,
                render_folded(stacks),
                content_type="text/plain; charset=utf-8",
            )
            return False
        self._send_json(
            200,
            {
                "enabled": True,
                "seconds": seconds or None,
                "fleet": want_fleet,
                "totals": self.profiler.totals(),
                "stacks": stacks,
            },
        )
        return False

    def _handle_debug_heap(self, url) -> bool:
        """tracemalloc heap snapshot; ``?start=1`` / ``?stop=1`` toggle
        tracking (it costs memory and time, so it is explicit), ``?top=N``
        bounds the allocation-site list, ``&fleet=1`` adds the workers'
        shipped heap summaries."""
        params = parse_qs(url.query)
        top_raw = (params.get("top") or [""])[0]
        want_fleet = (params.get("fleet") or [""])[0].lower() in ("1", "true", "yes")
        top = 30
        if top_raw:
            try:
                top = int(top_raw)
                if top < 1:
                    raise ValueError
            except ValueError:
                self._send_json(400, {"error": f"bad top {top_raw!r}"})
                return True
        if (params.get("start") or [""])[0].lower() in ("1", "true", "yes"):
            start_heap_tracking()
        elif (params.get("stop") or [""])[0].lower() in ("1", "true", "yes"):
            stop_heap_tracking()
        payload = {
            "tracking": heap_tracking_active(),
            "parent": heap_snapshot(top=top),
        }
        if want_fleet and self.fleet is not None:
            payload["workers"] = {
                worker: entry.get("heap", {})
                for worker, entry in self.fleet.statz_dict()["workers"].items()
            }
        self._send_json(200, payload)
        return False

    # -- plumbing ------------------------------------------------------------

    def _send(
        self,
        status: int,
        body: str,
        content_type: str = "text/html; charset=utf-8",
        status_only_body: Optional[str] = None,
        elapsed_ms: Optional[float] = None,
        extra_headers: Optional[Dict[str, str]] = None,
    ):
        payload = (status_only_body or body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        if elapsed_ms is not None:
            self.send_header("X-Response-Time-Ms", f"{elapsed_ms:.3f}")
        if self._trace_id is not None:
            self.send_header("X-Trace-Id", self._trace_id)
        if extra_headers:
            for name, value in extra_headers.items():
                self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(
        self,
        status: int,
        payload: dict,
        elapsed_ms: Optional[float] = None,
        extra_headers: Optional[Dict[str, str]] = None,
    ):
        self._send(
            status,
            json.dumps(payload),
            content_type="application/json; charset=utf-8",
            elapsed_ms=elapsed_ms,
            extra_headers=extra_headers,
        )


class XKSearchServer(ThreadingHTTPServer):
    """Threaded HTTP server with a cap on concurrently executing requests.

    ``ThreadingHTTPServer`` spawns one thread per connection; the semaphore
    bounds how many of them execute queries at once, so a traffic burst
    degrades into queueing rather than into unbounded thread contention.
    """

    daemon_threads = True

    #: Optional AdmissionGate, attached by make_server before serving
    #: starts; tracked around the semaphore so its in-flight count sees
    #: queued connections — exactly the load the watermarks must shed on.
    admission_gate: Optional[AdmissionGate] = None

    def __init__(self, address, handler, max_workers: int = DEFAULT_MAX_WORKERS):
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        super().__init__(address, handler)
        self.max_workers = max_workers
        self._slots = threading.BoundedSemaphore(max_workers)
        self._obs_registry: Optional[MetricsRegistry] = None
        self._obs_collector = None
        self._obs_exporter: Optional[TraceExporter] = None
        self._obs_slo: Optional[SLOEngine] = None
        self._obs_shipper: Optional[SnapshotShipper] = None
        self._obs_fleet: Optional[FleetCollector] = None
        self._obs_profiler: Optional[SamplingProfiler] = None
        self._obs_slo_state: Optional[str] = None

    def process_request_thread(self, request, client_address):
        gate = self.admission_gate
        if gate is not None:
            gate.enter()
        try:
            with self._slots:
                super().process_request_thread(request, client_address)
        finally:
            if gate is not None:
                gate.exit()

    def drain(self, timeout_s: float = 5.0) -> int:
        """Wait (bounded) for in-flight connections to finish.

        Called after ``shutdown()`` has stopped the accept loop; returns
        the number of connections still in flight when the timeout hit
        (0 = clean drain).  Without a gate there is no in-flight count
        to watch, so the wait degrades to a short grace sleep.
        """
        deadline = time.monotonic() + max(0.0, timeout_s)
        gate = self.admission_gate
        if gate is None:
            time.sleep(min(0.5, max(0.0, timeout_s)))
            return 0
        while gate.inflight > 0 and time.monotonic() < deadline:
            time.sleep(0.02)
        return gate.inflight

    def server_close(self):
        if self._obs_fleet is not None:
            # Stop the heartbeat before the pool goes away, and before
            # the SLO engine's final evaluation scrapes the registry.
            self._obs_fleet.close()
            self._obs_fleet = None
        if self._obs_profiler is not None:
            self._obs_profiler.close()
            self._obs_profiler = None
        if self._obs_registry is not None and self._obs_collector is not None:
            self._obs_registry.unregister_collector(self._obs_collector)
            self._obs_collector = None
        if self._obs_slo is not None and self._obs_slo_state is not None:
            # Persist the burn-rate window rings before the engine stops
            # evaluating, so a restart resumes mid-window.
            try:
                self._obs_slo.save_state(self._obs_slo_state)
            except OSError as exc:
                _log.warning("slo_state_save_failed", error=repr(exc))
        if self._obs_slo is not None:
            # Stop evaluating before the export pipelines close, so no
            # transition record races a closing exporter.
            self._obs_slo.close()
            self._obs_slo = None
        if self._obs_exporter is not None:
            # Flush-on-shutdown: drain whatever the queue still holds,
            # then account the rest as dropped (reason="shutdown").
            self._obs_exporter.close()
            self._obs_exporter = None
        if self._obs_shipper is not None:
            self._obs_shipper.close()
            self._obs_shipper = None
        super().server_close()


def make_server(
    system: XKSearch,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
    max_workers: int = DEFAULT_MAX_WORKERS,
    metrics: Optional[ServerMetrics] = None,
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    exporter: Optional[TraceExporter] = None,
    slo_engine: Optional[SLOEngine] = None,
    shipper: Optional[SnapshotShipper] = None,
    fleet: Optional[FleetCollector] = None,
    profiler: Optional[SamplingProfiler] = None,
    slo_state: Optional[str] = None,
    gate: Optional[AdmissionGate] = None,
    default_timeout_ms: Optional[float] = None,
) -> XKSearchServer:
    """A threaded HTTP server bound to *host:port* (port 0 = ephemeral),
    serving queries against *system*.  Caller owns the lifecycle
    (``serve_forever`` / ``shutdown`` / ``server_close``).

    The system's component stats (buffer pool, pager, caches) are
    registered as a collector on *registry* (default: the process-global
    one) for the lifetime of the server; ``server_close`` unregisters it.
    An *exporter* receives every finished request trace (asynchronously —
    the request path only enqueues) and is closed with the server.  A
    *slo_engine* is surfaced on ``/alertz`` + ``/statz`` and closed first
    on shutdown; a *shipper* (timed metrics snapshots) is closed last.
    A *gate* sheds search requests at its watermarks (429 + Retry-After)
    and tracks the in-flight count ``drain`` waits on;
    *default_timeout_ms* deadlines every search request that does not
    carry its own budget.
    """
    registry = registry if registry is not None else get_registry()
    handler = type(
        "XKSearchHandler",
        (_Handler,),
        {
            "system": system,
            "quiet": quiet,
            "metrics": metrics if metrics is not None else ServerMetrics(),
            "tracer": tracer if tracer is not None else Tracer(),
            "registry": registry,
            "exporter": exporter,
            "slo_engine": slo_engine,
            "fleet": fleet,
            "profiler": profiler,
            "gate": gate,
            "default_timeout_ms": default_timeout_ms,
        },
    )
    server = XKSearchServer((host, port), handler, max_workers=max_workers)
    server.admission_gate = gate
    collector = system_collector(system)
    registry.register_collector(collector)
    registry.register_collector(build_info_collector)
    server._obs_registry = registry
    server._obs_collector = collector
    server._obs_exporter = exporter
    server._obs_slo = slo_engine
    server._obs_shipper = shipper
    server._obs_fleet = fleet
    server._obs_profiler = profiler
    server._obs_slo_state = slo_state
    return server


def serve(
    index_dir: str,
    host: str = "127.0.0.1",
    port: int = 8080,
    max_workers: int = DEFAULT_MAX_WORKERS,
    cache_size: int = 1024,
    slow_ms: float = 100.0,
    trace_sample: float = 0.0,
    export_jsonl: Optional[str] = None,
    export_url: Optional[str] = None,
    export_timeout: float = DEFAULT_HTTP_TIMEOUT,
    log_json: bool = False,
    log_level: Optional[str] = None,
    log_sample: Optional[float] = None,
    workers_proc: int = 0,
    use_segments: bool = True,
    snapshot_every: Optional[float] = None,
    snapshot_otlp: bool = False,
    slo_specs: Optional[Sequence[str]] = None,
    slo_enabled: bool = True,
    slo_window_scale: float = 1.0,
    debug_latency_ms: float = 0.0,
    profile_hz: float = 0.0,
    alert_webhook: Optional[str] = None,
    slo_state: Optional[str] = None,
    default_timeout_ms: Optional[float] = None,
    verify_checksums: bool = False,
    admission_soft: Optional[int] = None,
    admission_hard: Optional[int] = None,
    p99_watermark_ms: Optional[float] = None,
    inject_faults: Optional[Sequence[str]] = None,
    drain_timeout_s: float = 5.0,
) -> None:
    """Blocking entry point used by ``xksearch serve``.

    ``export_jsonl``/``export_url`` (mutually exclusive) attach a trace
    exporter writing finished request traces to a JSONL file or POSTing
    them to a collector (``export_timeout`` bounds each POST).
    ``log_json`` switches structured logs on in JSON mode; ``log_level``
    (or ``REPRO_LOG_LEVEL``) sets the level, in text mode unless
    ``log_json`` is also given; ``log_sample`` rate-limits DEBUG/INFO
    chatter per (component, event) stream (WARN+ and traced requests
    always pass — see :func:`repro.obs.logging.set_log_sampling`).

    **SLOs** are evaluated by default (:func:`~repro.obs.slo.default_slos`;
    override with ``slo_specs`` spec strings, disable with
    ``slo_enabled=False``): burn rates over the Google-SRE paired windows,
    alert state on ``/alertz`` + ``/statz`` + gauges, transitions through
    the snapshot/trace export pipeline.  ``slo_window_scale`` shrinks every
    alerting window (CI makes hours into seconds).  ``snapshot_every``
    ships a full metrics snapshot to the export sink on that period
    (``snapshot_otlp`` shapes it as OTLP-style JSON).  ``debug_latency_ms``
    injects artificial execution latency — the end-to-end alert drill.

    ``workers_proc > 0`` adds a pool of that many **worker processes**
    executing cache-miss queries over mmap'd read-only index handles, with
    a cross-process shared result cache *and* a cross-process posting-block
    cache under it (docs/PERFORMANCE.md, "Scaling past the GIL" and
    "Posting segments").  The pool and caches are created *before* any
    server thread starts — fork with live threads is unsafe — and a
    platform without ``fork`` simply serves in-thread (logged, never
    fatal).  ``use_segments=False`` pins every process to the B+tree
    posting tier (byte-identical answers; for A/B comparison).

    **Cross-process observability** (docs/OBSERVABILITY.md,
    "Cross-process telemetry and profiling"): with a pool, a
    :class:`~repro.obs.fleet.FleetCollector` heartbeat snapshots every
    worker's registry and surfaces ``xks_worker_up{worker}`` + per-worker
    rollups on ``/metrics`` and a ``fleet`` section on ``/statz``.
    ``profile_hz > 0`` starts the sampling profiler (parent *and* each
    worker) feeding ``GET /debug/pprof``; heap snapshots live at
    ``GET /debug/heap``.  ``alert_webhook`` POSTs every SLO alert
    transition record to that URL through its own background exporter
    (in addition to the regular export pipeline).  ``slo_state`` persists
    the SLO burn-rate windows across restarts: loaded (with a staleness
    clamp) before serving, saved on shutdown.

    **Robustness** (docs/ROBUSTNESS.md): ``default_timeout_ms`` deadlines
    every search request that does not carry ``X-Deadline-Ms`` /
    ``?timeout_ms=``; ``verify_checksums`` re-checksums every page and
    posting block read, in this process *and* every pool worker;
    ``admission_soft``/``admission_hard`` (defaults ``2*max_workers`` /
    ``4*max_workers``) and ``p99_watermark_ms`` set the shedding
    watermarks; ``inject_faults`` arms fault-injection specs (exported to
    the environment *before* the pool forks, so workers inherit them);
    SIGTERM triggers a graceful drain bounded by ``drain_timeout_s``.
    """
    if export_jsonl and export_url:
        raise ValueError("choose one of export_jsonl / export_url, not both")
    if inject_faults:
        # Must precede pool creation: workers inherit the spec via the
        # environment across fork.
        plan = faultinject.arm(",".join(inject_faults))
        _log.warning("faults_armed", spec=plan.describe())
    if log_json or log_level is not None:
        configure_logging(level=log_level, json_mode=log_json)
    if log_sample is not None:
        set_log_sampling(log_sample)
    cache = QueryCache(result_capacity=cache_size) if cache_size > 0 else None
    tracer = Tracer(sample_rate=trace_sample, slow_threshold_ms=slow_ms)
    # The trace exporter and the snapshot shipper share one sink instance
    # (same file / same collector); both pipelines closing it is safe —
    # JsonlFileSink reopens lazily and close() is idempotent.
    sink = None
    if export_jsonl:
        sink = JsonlFileSink(export_jsonl)
    elif export_url:
        sink = HttpCollectorSink(export_url, timeout=export_timeout)
    exporter: Optional[TraceExporter] = None
    if sink is not None:
        exporter = TraceExporter(sink)
    shipper: Optional[SnapshotShipper] = None
    if snapshot_every is not None and snapshot_every > 0:
        if sink is None:
            raise ValueError(
                "snapshot shipping needs an export sink "
                "(--export-jsonl or --export-url)"
            )
        shipper = SnapshotShipper(
            sink=sink, interval=snapshot_every, otlp=snapshot_otlp
        )
    webhook_exporter = None
    if alert_webhook:
        from repro.obs.export import BackgroundExporter

        webhook_exporter = BackgroundExporter(
            HttpCollectorSink(alert_webhook, timeout=export_timeout),
            name="alert-webhook",
        )
        webhook_exporter.kind = "alert"
    slo_engine: Optional[SLOEngine] = None
    if slo_enabled:
        slos = (
            [parse_slo(spec) for spec in slo_specs] if slo_specs else default_slos()
        )
        policy = WindowPolicy()
        if slo_window_scale != 1.0:
            policy = policy.scaled(slo_window_scale)
        # Alert records ride the snapshot pipeline when one exists, else
        # the trace pipeline; with no sink they stay in-process (gauges,
        # /alertz and logs still work).  An --alert-webhook fans them out
        # to its own background POST pipeline on top of that.
        alert_exporter = shipper if shipper is not None else exporter
        if webhook_exporter is not None:
            from repro.obs.export import FanoutExporter

            # The webhook pipeline is closed separately below; the main
            # pipeline is owned by the server shutdown path.
            alert_exporter = FanoutExporter(
                [alert_exporter, webhook_exporter], owns=()
            )
        slo_engine = SLOEngine(
            slos=slos,
            policy=policy,
            eval_interval=min(5.0, max(0.2, policy.resolution_s)),
            exporter=alert_exporter,
        )
        if slo_state:
            slo_engine.load_state(slo_state)
        slo_engine.start()
    shared_cache = None
    posting_cache = None
    pool = None
    if workers_proc > 0:
        from repro.errors import PoolError
        from repro.xksearch.parallel import WorkerPool
        from repro.xksearch.shared_cache import PostingBlockCache, SharedResultCache

        shared_cache = SharedResultCache()
        if use_segments:
            posting_cache = PostingBlockCache()
        try:
            pool = WorkerPool(
                index_dir,
                workers=workers_proc,
                shared_cache=shared_cache,
                use_segments=use_segments,
                posting_cache=posting_cache,
                profile_hz=profile_hz,
                verify_checksums=verify_checksums,
            )
        except PoolError as exc:
            _log.warning("pool_unavailable", error=repr(exc))
            print(f"process pool unavailable ({exc}); serving in-thread")
    profiler: Optional[SamplingProfiler] = None
    if profile_hz > 0:
        profiler = SamplingProfiler(hz=profile_hz).start()
    fleet: Optional[FleetCollector] = None
    if pool is not None:
        fleet = FleetCollector(pool).start()
    try:
        with XKSearch.open(
            index_dir,
            cache=cache,
            shared_cache=shared_cache,
            use_segments=use_segments,
            verify_checksums=verify_checksums,
        ) as system:
            if posting_cache is not None:
                system.index.attach_posting_cache(posting_cache)
            if pool is not None:
                system.engine.attach_pool(pool)
            if debug_latency_ms > 0:
                system.engine.debug_latency_ms = debug_latency_ms
                _log.warning("debug_latency_enabled", ms=debug_latency_ms)
            gate = AdmissionGate(
                soft_limit=(
                    admission_soft if admission_soft is not None
                    else max_workers * 2
                ),
                hard_limit=(
                    admission_hard if admission_hard is not None
                    else max_workers * 4
                ),
                p99_watermark_ms=p99_watermark_ms,
            )
            server = make_server(
                system,
                host=host,
                port=port,
                quiet=False,
                max_workers=max_workers,
                tracer=tracer,
                exporter=exporter,
                slo_engine=slo_engine,
                shipper=shipper,
                fleet=fleet,
                profiler=profiler,
                slo_state=slo_state,
                gate=gate,
                default_timeout_ms=default_timeout_ms,
            )
            # Graceful drain: SIGTERM stops the accept loop (from a helper
            # thread — shutdown() deadlocks when called from serve_forever's
            # own thread, and a signal handler runs on the main thread),
            # then the normal shutdown path below drains in-flight work
            # before the exporters flush and the pool closes.
            def _on_sigterm(signum, frame):  # noqa: ARG001 (signal ABI)
                _log.warning("sigterm_draining")
                threading.Thread(
                    target=server.shutdown, name="xks-drain", daemon=True
                ).start()

            try:
                signal.signal(signal.SIGTERM, _on_sigterm)
            except ValueError:
                # Not the main thread (embedded/test use) — drain stays
                # available via server.shutdown() + server.drain().
                pass
            actual_port = server.server_address[1]
            export_note = ""
            if exporter is not None:
                export_note = f", exporting traces to {exporter.sink.describe()}"
            if shipper is not None:
                export_note += f", snapshots every {snapshot_every:g}s"
            slo_note = (
                f", {len(slo_engine.slos)} SLOs at /alertz"
                if slo_engine is not None
                else ""
            )
            pool_note = f", {pool.size} proc workers" if pool is not None else ""
            profile_note = (
                f", profiler at /debug/pprof ({profile_hz:g} Hz)"
                if profiler is not None
                else ""
            )
            print(
                f"XKSearch demo at http://{host}:{actual_port}/  "
                f"({max_workers} workers{pool_note}{profile_note}, "
                f"cache={'off' if cache is None else cache_size}, "
                f"segments={'on' if use_segments else 'off'}, "
                f"slow log at /debug/slow >= {slow_ms:.0f} ms"
                f"{export_note}{slo_note}; "
                f"Ctrl-C to stop)"
            )
            try:
                server.serve_forever()
            except KeyboardInterrupt:
                pass
            finally:
                leftover = server.drain(drain_timeout_s)
                if leftover:
                    _log.warning("drain_timeout", inflight=leftover)
                # server_close flushes exporters and the SLO engine; the
                # outer finally closes the pool and shared caches after.
                server.server_close()
    finally:
        # Idempotent: server_close() already closed these on the normal
        # path; this covers a failed open before the server existed.
        if fleet is not None:
            fleet.close()
        if profiler is not None:
            profiler.close()
        if slo_engine is not None:
            slo_engine.close()
        if webhook_exporter is not None:
            webhook_exporter.close()
        if shipper is not None:
            shipper.close()
        if exporter is not None:
            exporter.close()
        if pool is not None:
            pool.close()
        if shared_cache is not None:
            shared_cache.close()
        if posting_cache is not None:
            posting_cache.close()
