"""Process-pool query execution: pushing CPU-bound SLCA scans past the GIL.

The paper's algorithms are pure-Python Dewey-comparison loops, so a
threaded server executes cache-miss queries one at a time no matter how
many worker threads it has — the GIL serializes them.  This module moves
execution into a pool of **forked worker processes**:

* each worker opens the index in **mmap mode**
  (:class:`~repro.index.inverted.DiskKeywordIndex` with ``mmap_mode=True``),
  so all workers read the same OS page-cache copy of the posting lists —
  no per-worker buffer pool, no pickled posting lists crossing the pipe;
  only the query tokens go down and the (small) answer comes back;
* workers share the parent's :class:`~repro.xksearch.shared_cache.SharedResultCache`
  (forked after it is created), so a result computed by any process is a
  hit in every other one, under the same generation stamps;
* generation-based invalidation stays intact: every task carries the
  parent's current generation, the worker max-merges it into its own
  registry, and its :meth:`DiskKeywordIndex.generation` check reloads the
  on-disk state if an updater ran — exactly the single-process protocol;
* failure degrades, never fails: a dead worker is retired (and respawned,
  up to a budget), and any dispatch error raises
  :class:`~repro.errors.PoolError`, which the engine answers by executing
  the query in-thread and counting ``xks_pool_fallback_total``;
* telemetry crosses the fork boundary both ways: each task envelope
  carries the serving request's trace id, the worker binds it (so
  worker-side exemplars and log lines carry the request's id), runs the
  query inside a ``worker`` span tree, captures every metric update it
  makes (:func:`repro.obs.metrics.start_capture`), and ships
  ``(events, spans)`` back in the reply (:class:`TaskResult`) for the
  parent to replay/graft — ``/metrics`` and traces stay fleet-accurate;
* :meth:`WorkerPool.collect_snapshots` additionally pulls a full registry
  snapshot (plus profiler state) from each idle worker over the same
  pipe — the heartbeat behind the scrape-time
  :class:`~repro.obs.fleet.FleetCollector`.

Fork discipline: create the pool (and the shared cache) **before**
starting server threads.  ``fork()`` from a multi-threaded parent can
clone held locks into the child; at startup the parent is single-threaded
and the workers inherit a quiescent world.  Platforms without the
``fork`` start method get :class:`~repro.errors.PoolUnavailableError`
at construction, which callers treat as "serve in-thread".
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import DeadlineExceeded, PoolError, PoolUnavailableError
from repro.obs.logging import get_logger, reset_current_trace_id, set_current_trace_id
from repro.obs.metrics import (
    get_registry,
    instrumentation_enabled,
    start_capture,
    stop_capture,
)
from repro.obs.profiling import SamplingProfiler, heap_snapshot
from repro.obs.tracing import Span

#: Semantics a worker knows how to execute (engine entry point per value).
SEMANTICS = ("slca", "lca", "elca")

#: Default ceiling on one task's round trip before the worker is retired.
DEFAULT_TASK_TIMEOUT_S = 120.0

_log = get_logger("parallel")


@dataclass
class TaskResult:
    """Everything one pooled execution returns to the parent.

    ``events`` is the worker's captured metric-update stream (see
    :meth:`~repro.obs.metrics.MetricsRegistry.replay_events`); ``spans``
    is the worker-side span tree as a plain dict (``None`` when the
    caller did not ask for spans); ``worker`` identifies which pool
    worker ran the task.
    """

    ids: tuple
    counters: dict
    exec_ms: float
    shared_hit: bool
    admission: Optional[str]
    events: List[tuple] = field(default_factory=list)
    spans: Optional[dict] = None
    worker: int = -1


def _worker_snapshot(worker_id, profiler) -> dict:
    """One worker's live telemetry state (heartbeat payload)."""
    samples = []
    try:
        for sample in get_registry().collect():
            samples.append((sample.name, dict(sample.labels), float(sample.value)))
    except Exception:  # never let a scrape kill the worker loop
        pass
    payload = {
        "worker": worker_id,
        "pid": os.getpid(),
        "ts": time.time(),
        "samples": samples,
        "profile": profiler.snapshot() if profiler is not None else {},
        "profile_totals": profiler.totals() if profiler is not None else {},
    }
    try:
        payload["heap"] = heap_snapshot(top=10)
    except Exception:
        payload["heap"] = {"tracing": False, "top": []}
    return payload


def _worker_main(
    worker_id,
    index_dir,
    conn,
    skew_threshold,
    shared_cache,
    use_segments=True,
    posting_cache=None,
    profile_hz=0.0,
    verify_checksums=False,
):
    """Worker process body: open the index in mmap mode, serve tasks.

    Runs in the forked child.  The index handle is private to this
    process (its own fd, its own mapping of the shared page cache — and,
    with segments, its own mapping of the shared segment file); the
    ``shared_cache`` / ``posting_cache`` segments and their locks are the
    parent's, inherited through fork.
    """
    # Imported here so the symbols resolve in the child without making
    # this module depend on the engine at import time (the engine is what
    # imports the pool's error types).
    from repro.index.inverted import DiskKeywordIndex
    from repro.robustness import faultinject
    from repro.robustness.deadline import Deadline, bind_deadline
    from repro.xksearch.cache import seed_generation
    from repro.xksearch.engine import ExecutionStats, QueryEngine

    try:
        index = DiskKeywordIndex(
            index_dir,
            mmap_mode=True,
            use_segments=use_segments,
            verify_checksums=verify_checksums,
        )
        if posting_cache is not None:
            index.attach_posting_cache(posting_cache)
        engine = QueryEngine(
            index, skew_threshold=skew_threshold, shared_cache=shared_cache
        )
        profiler = None
        if profile_hz and profile_hz > 0:
            profiler = SamplingProfiler(hz=profile_hz).start()
        conn.send(("ready", os.getpid()))
    except Exception as exc:  # surfaced to the parent as a failed spawn
        try:
            conn.send(("init_error", repr(exc)))
        finally:
            conn.close()
        return
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        except KeyboardInterrupt:
            # A terminal Ctrl-C reaches the whole foreground process
            # group; the parent's shutdown path closes the pipe anyway,
            # so exit quietly instead of spraying a traceback per worker.
            break
        if message is None:
            break
        if message[0] == "snapshot":
            snap_id = message[1]
            try:
                conn.send((snap_id, "snap", _worker_snapshot(worker_id, profiler)))
            except (OSError, BrokenPipeError):
                break
            continue
        (_, task_id, semantics, tokens, algorithm, generation,
         trace_id, want_spans, deadline_epoch) = message
        if faultinject.fire("kill-worker") is not None:
            # Simulate a hard worker crash mid-task: no reply, no cleanup.
            os._exit(1)
        deadline = (
            Deadline.from_wall_expiry(deadline_epoch) if deadline_epoch else None
        )
        trace_token = set_current_trace_id(trace_id) if trace_id else None
        root_span = None
        if want_spans:
            root_span = Span(
                "worker",
                {
                    "worker": worker_id,
                    "pid": os.getpid(),
                    "semantics": semantics,
                    "algorithm": algorithm,
                },
            )
        start_capture()
        started = time.perf_counter()
        try:
            # An already-expired task is aborted before any work: the
            # parent's caller needs a 504, not a late answer.
            if deadline is not None:
                deadline.check("dispatch")
            # Adopt the parent's view of the index generation before
            # executing, so an update the parent has already observed is
            # never missed here; generation() both stats the manifest for
            # updates neither process has seen and reloads this handle's
            # on-disk state (remapping the grown file) when it is behind.
            gen_span = Span("worker.generation") if want_spans else None
            seed_generation(index.index_dir, generation)
            index.generation()
            if gen_span is not None:
                gen_span.finish()
                root_span.children.append(gen_span)
            exec_span = Span("worker.execute") if want_spans else None
            stats = ExecutionStats()
            with bind_deadline(deadline):
                if semantics == "slca":
                    ids = tuple(
                        engine.execute(tokens, algorithm=algorithm, stats=stats)
                    )
                elif semantics == "lca":
                    ids = tuple(engine.execute_all_lca(tokens, stats=stats))
                elif semantics == "elca":
                    ids = tuple(engine.execute_elca(tokens, stats=stats))
                else:
                    raise ValueError(f"unknown semantics {semantics!r}")
            exec_ms = (time.perf_counter() - started) * 1000
            events = stop_capture()
            spans = None
            if root_span is not None:
                if exec_span is not None:
                    exec_span.finish()
                    exec_span.annotate(
                        shared_hit=bool(stats.result_from_cache),
                        answers=len(ids),
                    )
                    root_span.children.append(exec_span)
                root_span.finish()
                spans = root_span.to_dict()
            conn.send(
                (
                    task_id,
                    "ok",
                    ids,
                    stats.counters.as_dict(),
                    exec_ms,
                    stats.result_from_cache,
                    stats.shared_admission,
                    events,
                    spans,
                )
            )
        except DeadlineExceeded as exc:
            # A distinct reply status: the parent must surface a 504 to
            # its caller, never re-execute in-thread.
            stop_capture()
            try:
                conn.send((task_id, "deadline", exc.phase))
            except (OSError, BrokenPipeError):
                break
        except Exception as exc:
            stop_capture()
            try:
                conn.send((task_id, "error", repr(exc)))
            except (OSError, BrokenPipeError):
                break
        finally:
            if trace_token is not None:
                reset_current_trace_id(trace_token)
    conn.close()


class _WorkerHandle:
    """Parent-side state for one worker process."""

    __slots__ = ("worker_id", "process", "conn", "tasks", "pid")

    def __init__(self, worker_id, process, conn):
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self.tasks = 0
        self.pid = process.pid


class WorkerPool:
    """A fixed-size pool of forked query-execution processes.

    Thread-safe: any number of server threads may call :meth:`execute`
    concurrently; each dispatch checks a worker out of the idle queue for
    the duration of its task, which both load-balances (FIFO checkout is
    round-robin under sequential load) and applies backpressure when
    every worker is busy.
    """

    def __init__(
        self,
        index_dir,
        workers: int = 2,
        skew_threshold: float = 10.0,
        shared_cache=None,
        task_timeout_s: float = DEFAULT_TASK_TIMEOUT_S,
        spawn_timeout_s: float = 30.0,
        max_respawns: Optional[int] = None,
        respawn_reset_s: float = 60.0,
        use_segments: bool = True,
        posting_cache=None,
        profile_hz: float = 0.0,
        verify_checksums: bool = False,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise PoolUnavailableError(
                "process pool requires the fork start method; "
                "serve in-thread on this platform"
            )
        self.index_dir = os.fspath(index_dir)
        self.size = workers
        self.skew_threshold = skew_threshold
        self.shared_cache = shared_cache
        self.use_segments = use_segments
        self.posting_cache = posting_cache
        self.profile_hz = float(profile_hz)
        self.verify_checksums = verify_checksums
        self.task_timeout_s = task_timeout_s
        self.spawn_timeout_s = spawn_timeout_s
        self.max_respawns = max_respawns if max_respawns is not None else workers * 2
        self.respawn_reset_s = respawn_reset_s
        self._ctx = multiprocessing.get_context("fork")
        self._idle: "queue.Queue[_WorkerHandle]" = queue.Queue()
        self._lock = threading.Lock()
        self._workers: List[_WorkerHandle] = []
        self._alive = 0
        self._closed = False
        self._next_task_id = 0
        self._next_worker_id = 0
        self.respawns = 0
        self.dispatch_errors = 0
        self._budget_used = 0
        self._last_death_ts: Optional[float] = None
        for _ in range(workers):
            self._spawn()
        _log.info(
            "pool_started",
            workers=workers,
            index_dir=self.index_dir,
            pids=[handle.pid for handle in self._workers],
        )

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self) -> _WorkerHandle:
        with self._lock:
            worker_id = self._next_worker_id
            self._next_worker_id += 1
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                worker_id,
                self.index_dir,
                child_conn,
                self.skew_threshold,
                self.shared_cache,
                self.use_segments,
                self.posting_cache,
                self.profile_hz,
                self.verify_checksums,
            ),
            daemon=True,
            name=f"xks-worker-{worker_id}",
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(self.spawn_timeout_s):
            process.kill()
            raise PoolError(f"worker {worker_id} did not report ready")
        status = parent_conn.recv()
        if status[0] != "ready":
            process.join(timeout=1.0)
            raise PoolError(f"worker {worker_id} failed to start: {status[1]}")
        handle = _WorkerHandle(worker_id, process, parent_conn)
        with self._lock:
            self._workers.append(handle)
            self._alive += 1
        self._idle.put(handle)
        return handle

    def _retire(self, handle: _WorkerHandle, reason: str) -> None:
        """Drop a failed worker and try to keep the pool at size.

        The respawn budget bounds *burst* deaths, not lifetime deaths: a
        sustained healthy window (``respawn_reset_s`` with no retirement)
        refills it, so an isolated crash a day never eats into tomorrow's
        headroom.  ``respawns`` stays a monotonic lifetime counter for
        observability.
        """
        with self._lock:
            if handle in self._workers:
                self._workers.remove(handle)
                self._alive -= 1
            closed = self._closed
            now = time.monotonic()
            if (
                self._last_death_ts is not None
                and now - self._last_death_ts >= self.respawn_reset_s
            ):
                self._budget_used = 0
            self._last_death_ts = now
            can_respawn = not closed and self._budget_used < self.max_respawns
            if can_respawn:
                self._budget_used += 1
                self.respawns += 1
        try:
            handle.conn.close()
        except OSError:
            pass
        if handle.process.is_alive():
            handle.process.kill()
        _log.warning(
            "pool_worker_retired",
            worker=handle.worker_id,
            pid=handle.pid,
            reason=reason,
        )
        if instrumentation_enabled():
            get_registry().counter(
                "xks_pool_worker_deaths_total",
                "Pool workers retired after a dispatch failure.",
                labelnames=("reason",),
            ).labels(reason=reason).inc()
        if can_respawn:
            try:
                self._spawn()
            except (PoolError, OSError) as exc:
                _log.warning("pool_respawn_failed", error=repr(exc))

    @property
    def alive(self) -> int:
        with self._lock:
            return self._alive

    def close(self) -> None:
        """Stop every worker (best effort; stragglers are killed)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers)
            self._workers.clear()
            self._alive = 0
        for handle in workers:
            try:
                handle.conn.send(None)
            except (OSError, BrokenPipeError):
                pass
        for handle in workers:
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.kill()
            try:
                handle.conn.close()
            except OSError:
                pass
        _log.info("pool_closed", workers=len(workers))

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- dispatch ------------------------------------------------------------

    def execute(
        self,
        semantics: str,
        tokens: Sequence[str],
        algorithm: str,
        generation: int,
        trace_id: Optional[str] = None,
        want_spans: bool = False,
        deadline_epoch: Optional[float] = None,
    ) -> TaskResult:
        """Run one query in a worker.

        ``trace_id`` is the serving request's trace context — the worker
        binds it for the duration of the task so worker-side exemplars and
        log lines carry it; ``want_spans`` asks the worker to wrap the
        execution in a span tree and return it (``TaskResult.spans``).
        ``deadline_epoch`` is the request deadline as wall-clock epoch
        seconds: the worker aborts an already-expired task up front and
        checkpoints the deadline inside its algorithm loops; an expiry
        raises :class:`~repro.errors.DeadlineExceeded` here, which the
        caller must surface as a timeout — NOT retry in-thread.
        Raises :class:`~repro.errors.PoolError` on any dispatch failure —
        closed pool, no live workers, timeout, dead worker, or an error
        raised inside the worker — and the caller is expected to fall
        back to in-thread execution.
        """
        if self._closed:
            raise PoolError("pool is closed")
        if self.alive == 0:
            raise PoolError("no live workers")
        with self._lock:
            task_id = self._next_task_id
            self._next_task_id += 1
        try:
            handle = self._idle.get(timeout=self.task_timeout_s)
        except queue.Empty:
            self.dispatch_errors += 1
            raise PoolError("no idle worker within timeout")
        if not handle.process.is_alive():
            self.dispatch_errors += 1
            self._retire(handle, "dead_at_checkout")
            raise PoolError(f"worker {handle.worker_id} died")
        # Wait at most a second past the request deadline: by then the
        # worker has either answered "deadline" from its own checkpoint
        # or is stuck somewhere uncheckpointable and must be abandoned.
        poll_timeout = self.task_timeout_s
        if deadline_epoch is not None:
            poll_timeout = min(
                poll_timeout, max(0.1, deadline_epoch - time.time() + 1.0)
            )
        try:
            handle.conn.send(
                ("task", task_id, semantics, list(tokens), algorithm,
                 generation, trace_id, bool(want_spans), deadline_epoch)
            )
            if not handle.conn.poll(poll_timeout):
                if deadline_epoch is not None and time.time() >= deadline_epoch:
                    # The task is still in flight inside the worker, so the
                    # handle cannot be reused without breaking framing.
                    self.dispatch_errors += 1
                    self._retire(handle, "deadline_abandoned")
                    raise DeadlineExceeded(phase="execute")
                raise PoolError(f"worker {handle.worker_id} timed out")
            reply = handle.conn.recv()
        except DeadlineExceeded:
            raise
        except PoolError:
            self.dispatch_errors += 1
            self._retire(handle, "timeout")
            raise
        except (OSError, EOFError, BrokenPipeError) as exc:
            self.dispatch_errors += 1
            self._retire(handle, "pipe_broken")
            raise PoolError(f"worker {handle.worker_id} pipe failed: {exc!r}")
        handle.tasks += 1
        self._idle.put(handle)
        self._observe_task(handle.worker_id)
        if reply[0] != task_id:
            # A stale reply means request/response framing broke; the
            # worker was already handed back, but its answer is unusable.
            raise PoolError(f"worker {handle.worker_id} returned a stale reply")
        if reply[1] == "deadline":
            # The worker aborted cleanly at a checkpoint; it is healthy
            # and already back in the idle queue.
            raise DeadlineExceeded(phase=reply[2])
        if reply[1] != "ok":
            raise PoolError(f"worker {handle.worker_id} error: {reply[2]}")
        (_task_id, _status, ids, counters, exec_ms, shared_hit, admission,
         events, spans) = reply
        return TaskResult(
            ids=ids,
            counters=counters,
            exec_ms=exec_ms,
            shared_hit=shared_hit,
            admission=admission,
            events=list(events or ()),
            spans=spans,
            worker=handle.worker_id,
        )

    # -- heartbeat snapshots -------------------------------------------------

    def collect_snapshots(self, timeout_s: float = 2.0) -> List[dict]:
        """Pull one telemetry snapshot from every currently idle worker.

        Busy workers are skipped (they answer the next heartbeat); a
        worker that fails to answer is retired exactly like a failed
        dispatch.  Returns the snapshot payloads
        (see :func:`_worker_snapshot`).
        """
        if self._closed:
            return []
        held: List[_WorkerHandle] = []
        while True:
            try:
                held.append(self._idle.get_nowait())
            except queue.Empty:
                break
        snapshots: List[dict] = []
        for handle in held:
            if not handle.process.is_alive():
                self._retire(handle, "dead_at_snapshot")
                continue
            with self._lock:
                snap_id = self._next_task_id
                self._next_task_id += 1
            try:
                handle.conn.send(("snapshot", snap_id))
                if not handle.conn.poll(timeout_s):
                    raise PoolError(f"worker {handle.worker_id} snapshot timed out")
                reply = handle.conn.recv()
                if reply[0] != snap_id or reply[1] != "snap":
                    raise PoolError(f"worker {handle.worker_id} snapshot framing broke")
            except PoolError:
                self._retire(handle, "snapshot_timeout")
                continue
            except (OSError, EOFError, BrokenPipeError):
                self._retire(handle, "snapshot_pipe_broken")
                continue
            snapshots.append(reply[2])
            self._idle.put(handle)
        return snapshots

    def _observe_task(self, worker_id: int) -> None:
        if not instrumentation_enabled():
            return
        get_registry().counter(
            "xks_pool_tasks_total",
            "Queries executed by each pool worker.",
            labelnames=("worker",),
        ).labels(worker=str(worker_id)).inc()

    # -- observability -------------------------------------------------------

    def stats_dict(self) -> dict:
        with self._lock:
            workers = [
                {
                    "worker": handle.worker_id,
                    "pid": handle.pid,
                    "tasks": handle.tasks,
                    "alive": handle.process.is_alive(),
                }
                for handle in self._workers
            ]
            return {
                "size": self.size,
                "alive": self._alive,
                "respawns": self.respawns,
                "respawn_budget_used": self._budget_used,
                "max_respawns": self.max_respawns,
                "dispatch_errors": self.dispatch_errors,
                "workers": workers,
            }
