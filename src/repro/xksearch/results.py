"""Search results: SLCA nodes rendered for presentation.

The demo of the paper rendered each SLCA's subtree as HTML; here a
:class:`SearchResult` carries the Dewey number, and — when the document is
available in memory — the element path from the root, an XML snippet of the
answer subtree, and the per-keyword witness nodes (which node under the
SLCA matched each query keyword), the kind of explanation XSEarch-style
systems attach to answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.xmltree.dewey import Dewey, DeweyTuple, is_ancestor_or_self
from repro.xmltree.serialize import serialize
from repro.xmltree.tree import XMLTree


@dataclass
class SearchResult:
    """One SLCA answer."""

    dewey: DeweyTuple
    path: Optional[str] = None           # e.g. "School/Class" (tags root→SLCA)
    snippet: Optional[str] = None        # XML of the answer subtree
    witnesses: Dict[str, List[DeweyTuple]] = field(default_factory=dict)

    @property
    def id(self) -> Dewey:
        """The Dewey number as a public-API object."""
        return Dewey(self.dewey)

    def __str__(self) -> str:
        label = str(Dewey(self.dewey))
        return f"{label} ({self.path})" if self.path else label


def decorate_result(
    dewey: DeweyTuple,
    tree: Optional[XMLTree],
    keywords: Optional[List[str]] = None,
    keyword_lists: Optional[Dict[str, List[DeweyTuple]]] = None,
    snippet_limit: int = 2000,
) -> SearchResult:
    """Attach presentation data to a raw SLCA Dewey number.

    Without a tree the result is bare.  ``keyword_lists`` (when given along
    with ``keywords``) is used to collect each keyword's witness nodes
    inside the answer subtree.
    """
    result = SearchResult(dewey)
    if tree is not None:
        node = tree.node(dewey)
        tags: List[str] = []
        walk = node
        while walk is not None:
            if not walk.is_text:
                tags.append(walk.tag)
            walk = walk.parent
        result.path = "/".join(reversed(tags))
        snippet = serialize(node)
        if len(snippet) > snippet_limit:
            snippet = snippet[:snippet_limit] + "…"
        result.snippet = snippet
    if keywords and keyword_lists:
        for keyword in keywords:
            hits = [
                d
                for d in keyword_lists.get(keyword, [])
                if is_ancestor_or_self(dewey, d)
            ]
            result.witnesses[keyword] = hits
    return result
