"""Result ranking: ordering SLCAs by how specific and compact they are.

The paper returns SLCAs in document order; its Section 7 points at
XRANK/XSEarch-style systems that additionally *rank* answers.  This module
provides a simple, deterministic specificity ranking built only from
information the search already has — the answer's Dewey number and the
keyword witnesses inside it:

* **depth** — a deeper SLCA is a more specific context (a ``<paper>``
  beats a ``<year>`` beats the whole ``<dblp>``);
* **compactness** — the closer the witnesses sit to the answer root, the
  tighter the relationship (sum over keywords of the *minimum* witness
  distance from the SLCA);
* **witness support** — more matching occurrences inside the answer break
  remaining ties upward.

Scores are in (0, 1]; ties finally break by document order so ranking is
total and stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.xksearch.results import SearchResult
from repro.xmltree.dewey import DeweyTuple


@dataclass
class RankedResult:
    """A search result with its ranking score and feature breakdown."""

    result: SearchResult
    score: float
    depth: int
    mean_witness_distance: float
    witness_count: int

    @property
    def dewey(self) -> DeweyTuple:
        return self.result.dewey

    def __str__(self) -> str:
        return f"{self.result} [score={self.score:.3f}]"


def score_result(
    result: SearchResult,
    max_depth: int,
    depth_weight: float = 0.5,
    proximity_weight: float = 0.4,
    support_weight: float = 0.1,
) -> RankedResult:
    """Score one result; weights must sum to 1 (validated)."""
    total = depth_weight + proximity_weight + support_weight
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"ranking weights must sum to 1, got {total}")
    depth = len(result.dewey)
    depth_score = depth / max(max_depth, depth)

    distances: List[int] = []
    witness_count = 0
    for hits in result.witnesses.values():
        if not hits:
            continue
        witness_count += len(hits)
        distances.append(min(len(hit) - depth for hit in hits))
    mean_distance = sum(distances) / len(distances) if distances else 0.0
    proximity_score = 1.0 / (1.0 + mean_distance)
    support_score = 1.0 - 1.0 / (1.0 + witness_count)

    score = (
        depth_weight * depth_score
        + proximity_weight * proximity_score
        + support_weight * support_score
    )
    return RankedResult(
        result=result,
        score=score,
        depth=depth,
        mean_witness_distance=mean_distance,
        witness_count=witness_count,
    )


def rank_results(
    results: Sequence[SearchResult],
    max_depth: Optional[int] = None,
    depth_weight: float = 0.5,
    proximity_weight: float = 0.4,
    support_weight: float = 0.1,
) -> List[RankedResult]:
    """Rank results best-first (score desc, then document order).

    ``max_depth`` normalizes the depth feature; when omitted, the deepest
    answer in the batch is used (a within-query normalization).
    """
    if not results:
        return []
    if max_depth is None:
        max_depth = max(len(r.dewey) for r in results)
    ranked = [
        score_result(
            r,
            max_depth,
            depth_weight=depth_weight,
            proximity_weight=proximity_weight,
            support_weight=support_weight,
        )
        for r in results
    ]
    ranked.sort(key=lambda rr: (-rr.score, rr.dewey))
    return ranked
