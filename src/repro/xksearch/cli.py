"""Command-line interface: ``xksearch build|search|stats``.

Examples::

    xksearch build school.xml school.index
    xksearch search school.index "John Ben"
    xksearch search school.index --algorithm stack --lca "John Ben"
    xksearch stats school.index
    xksearch fsck school.index
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.errors import ReproError
from repro.index.builder import build_index, load_manifest
from repro.xksearch.engine import ExecutionStats
from repro.xksearch.system import XKSearch
from repro.xmltree.parser import parse_file


def _cmd_build(args: argparse.Namespace) -> int:
    started = time.perf_counter()
    tree = parse_file(args.document)
    report = build_index(
        tree,
        args.index_dir,
        page_size=args.page_size,
        codec=args.codec,
        keep_document=not args.no_document,
    )
    elapsed = time.perf_counter() - started
    print(f"indexed {report.postings} postings for {report.keywords} keywords")
    print(
        f"{report.pages} pages of {report.page_size} B "
        f"({report.bytes_on_disk / 1024:.1f} KiB), codec={report.codec}, "
        f"B+tree heights il={report.il_height} scan={report.scan_height}"
    )
    print(f"build time: {elapsed:.2f}s")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    with XKSearch.open(args.index_dir, load_document=not args.ids_only) as system:
        if args.explain:
            return _search_explain(system, args)
        plan = system.explain(args.query, algorithm=args.algorithm)
        stats = ExecutionStats()
        started = time.perf_counter()
        if args.lca:
            results = system.search_all_lcas(args.query, stats=stats)
            kind = "LCA"
        elif args.elca:
            results = system.search_elcas(args.query, stats=stats)
            kind = "ELCA"
        else:
            results = system.search(args.query, algorithm=args.algorithm, limit=args.limit)
            kind = "SLCA"
        elapsed = (time.perf_counter() - started) * 1000
        print(
            f"plan: algorithm={plan.algorithm} keywords={plan.keywords} "
            f"frequencies={plan.frequencies}"
        )
        print(f"{len(results)} {kind} answer(s) in {elapsed:.2f} ms")
        for result in results:
            print(f"--- {result}")
            if result.snippet and not args.ids_only:
                print(result.snippet.rstrip())
    return 0


def _search_explain(system: XKSearch, args: argparse.Namespace) -> int:
    """EXPLAIN mode: run the query profiled, print the JSON breakdown.

    The answer is computed by the same engine path as a plain search (the
    profile rides along in ``stats.profile``), so the printed ids are
    byte-identical to what the non-explain search returns.
    """
    import json

    stats = ExecutionStats()
    ids = list(
        system.search_ids(
            args.query, algorithm=args.algorithm, stats=stats, profile=True
        )
    )
    if args.limit is not None:
        ids = ids[: args.limit]
    dotted = [".".join(map(str, dewey)) for dewey in ids]
    print(f"{len(dotted)} SLCA answer(s): {dotted}")
    print(json.dumps(stats.profile.as_dict(), indent=2))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    manifest = load_manifest(args.index_dir)
    print(f"index format version: {manifest['version']}")
    print(f"codec: {manifest['codec']}, page size: {manifest['page_size']} B")
    print(f"keywords: {manifest['keywords']}, postings: {manifest['postings']}")
    print(f"document stored: {'yes' if manifest.get('has_document') else 'no'}")
    if args.top:
        with XKSearch.open(args.index_dir, load_document=False) as system:
            pairs = sorted(
                system.index.frequency_table.items(), key=lambda kv: -kv[1]
            )[: args.top]
            print(f"top {len(pairs)} keywords by frequency:")
            for keyword, freq in pairs:
                print(f"  {keyword:24s} {freq}")
    return 0


def _cmd_group(args: argparse.Namespace) -> int:
    from repro.xmltree.dblp import group_by_venue_year
    from repro.xmltree.serialize import serialize

    flat = parse_file(args.document)
    grouped = group_by_venue_year(flat)
    with open(args.output, "w", encoding="utf-8") as fh:
        fh.write(serialize(grouped.root))
    venues = len(grouped.root.children)
    print(
        f"grouped {len(flat)}-node flat file into {len(grouped)} nodes "
        f"({venues} venues, depth {grouped.depth}) -> {args.output}"
    )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.index.verify import verify_index

    report = verify_index(args.index_dir)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.xmltree.docstats import analyze, format_stats

    tree = parse_file(args.document)
    print(format_stats(analyze(tree, top=args.top)))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.xksearch.server import serve

    if args.export_jsonl and args.export_url:
        print("error: choose one of --export-jsonl / --export-url", file=sys.stderr)
        return 2
    serve(
        args.index_dir,
        host=args.host,
        port=args.port,
        max_workers=args.workers,
        cache_size=args.cache_size,
        slow_ms=args.slow_ms,
        trace_sample=args.trace_sample,
        export_jsonl=args.export_jsonl,
        export_url=args.export_url,
        export_timeout=args.export_timeout,
        log_json=args.log_json,
        log_level=args.log_level,
        log_sample=args.log_sample,
        workers_proc=args.workers_proc,
        use_segments=not args.no_segments,
        snapshot_every=args.snapshot_every,
        snapshot_otlp=args.snapshot_otlp,
        slo_specs=args.slo or None,
        slo_enabled=not args.no_slo,
        slo_window_scale=args.slo_window_scale,
        debug_latency_ms=args.debug_latency_ms,
        profile_hz=args.profile_hz,
        alert_webhook=args.alert_webhook,
        slo_state=args.slo_state,
        default_timeout_ms=args.default_timeout_ms,
        verify_checksums=args.verify_checksums,
        admission_soft=args.admission_soft,
        admission_hard=args.admission_hard,
        p99_watermark_ms=args.p99_watermark_ms,
        inject_faults=args.inject_fault or None,
        drain_timeout_s=args.drain_timeout_s,
    )
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    """Deep integrity check: structure + every stored checksum."""
    from repro.index.verify import fsck_index

    report = fsck_index(args.index_dir)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_slo_status(args: argparse.Namespace) -> int:
    """Fetch ``/alertz`` from a running server and render it.

    Exit status mirrors alert state (0 = no alert firing, 1 = at least
    one firing) so the command slots into shell health checks.
    """
    import json
    import urllib.request

    url = args.url.rstrip("/") + "/alertz"
    with urllib.request.urlopen(url, timeout=args.timeout) as response:
        payload = json.loads(response.read().decode("utf-8"))
    firing = [
        alert
        for slo in payload.get("slos", [])
        for alert in slo.get("alerts", [])
        if alert.get("state") == "firing"
    ]
    if args.json:
        print(json.dumps(payload, indent=2))
        return 1 if firing else 0
    if not payload.get("enabled", False):
        print("SLO engine disabled on this server")
        return 0
    print(
        f"{len(payload.get('slos', []))} SLOs, "
        f"{payload.get('transitions', 0)} alert transitions, "
        f"uptime {payload.get('uptime_s', 0):.0f}s"
    )
    for slo in payload.get("slos", []):
        burn = ", ".join(
            f"{window}={rate:g}x"
            for window, rate in slo.get("burn_rates", {}).items()
        )
        print(
            f"  {slo['name']}: budget {slo['error_budget_remaining']:.4f} "
            f"({slo['total']:.0f} events, error rate {slo['error_rate']:.6f}; "
            f"burn {burn or 'n/a'})"
        )
        for alert in slo.get("alerts", []):
            marker = "!!" if alert["state"] == "firing" else "  "
            print(
                f"  {marker}  [{alert['severity']}] {alert['state']}"
                f" (burn short={alert['burn_short']:g}x"
                f" long={alert['burn_long']:g}x, max {alert['max_burn']:g}x)"
            )
    return 1 if firing else 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xksearch",
        description="Keyword search for smallest LCAs in XML documents (SIGMOD 2005).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build", help="index an XML document")
    p_build.add_argument("document", help="path to the XML document")
    p_build.add_argument("index_dir", help="directory to create the index in")
    p_build.add_argument("--page-size", type=int, default=4096)
    p_build.add_argument("--codec", choices=("packed", "varint"), default="packed")
    p_build.add_argument(
        "--no-document",
        action="store_true",
        help="do not store the document (results will be bare Dewey ids)",
    )
    p_build.set_defaults(func=_cmd_build)

    p_search = sub.add_parser("search", help="run a keyword query")
    p_search.add_argument("index_dir")
    p_search.add_argument("query", help="keywords, e.g. \"John Ben\"")
    p_search.add_argument(
        "--algorithm", choices=("auto", "il", "scan", "stack"), default="auto"
    )
    p_search.add_argument("--limit", type=int, default=None)
    p_search.add_argument(
        "--lca", action="store_true", help="return all LCAs instead of SLCAs"
    )
    p_search.add_argument(
        "--elca",
        action="store_true",
        help="return Exclusive LCAs (XRANK semantics) instead of SLCAs",
    )
    p_search.add_argument(
        "--ids-only", action="store_true", help="print Dewey ids without snippets"
    )
    p_search.add_argument(
        "--explain",
        action="store_true",
        help="print a per-phase timing/op-count/I-O breakdown as JSON",
    )
    p_search.set_defaults(func=_cmd_search)

    p_stats = sub.add_parser("stats", help="show index statistics")
    p_stats.add_argument("index_dir")
    p_stats.add_argument("--top", type=int, default=0, help="show N most frequent keywords")
    p_stats.set_defaults(func=_cmd_stats)

    p_group = sub.add_parser(
        "group", help="apply the paper's DBLP preprocessing to a flat file"
    )
    p_group.add_argument("document", help="flat DBLP-style XML input")
    p_group.add_argument("output", help="path for the grouped document")
    p_group.set_defaults(func=_cmd_group)

    p_verify = sub.add_parser("verify", help="check an index's integrity")
    p_verify.add_argument("index_dir")
    p_verify.set_defaults(func=_cmd_verify)

    p_analyze = sub.add_parser("analyze", help="profile a document before indexing")
    p_analyze.add_argument("document", help="path to the XML document")
    p_analyze.add_argument("--top", type=int, default=10, help="top keywords to list")
    p_analyze.set_defaults(func=_cmd_analyze)

    p_serve = sub.add_parser("serve", help="run the web demo over an index")
    p_serve.add_argument("index_dir")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080)
    p_serve.add_argument(
        "--workers",
        type=int,
        default=8,
        help="cap on concurrently executing requests (default 8)",
    )
    p_serve.add_argument(
        "--workers-proc",
        type=int,
        default=0,
        metavar="N",
        help="execute cache-miss queries in N forked worker processes over "
        "mmap'd indexes (0 = in-thread; falls back in-thread if fork is "
        "unavailable)",
    )
    p_serve.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="result-cache capacity in entries; 0 disables caching",
    )
    p_serve.add_argument(
        "--slow-ms",
        type=float,
        default=100.0,
        help="latency threshold for the /debug/slow log (default 100 ms)",
    )
    p_serve.add_argument(
        "--trace-sample",
        type=float,
        default=0.0,
        help="fraction of requests to span-trace (0.0 = only forced traces)",
    )
    p_serve.add_argument(
        "--export-jsonl",
        default=None,
        metavar="FILE",
        help="append finished request traces to FILE as JSON lines",
    )
    p_serve.add_argument(
        "--export-url",
        default=None,
        metavar="URL",
        help="POST finished request traces to an HTTP collector at URL",
    )
    p_serve.add_argument(
        "--no-segments",
        action="store_true",
        help="disable the packed posting-segment fast path; every keyword "
        "lookup descends the B+tree (answers are byte-identical)",
    )
    p_serve.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured JSON logs to stderr (one object per line)",
    )
    p_serve.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=None,
        help="log level (default: REPRO_LOG_LEVEL, else info)",
    )
    p_serve.add_argument(
        "--log-sample",
        type=float,
        default=None,
        metavar="RATE",
        help="head-sample DEBUG/INFO logs to RATE lines/s per "
        "(component, event) stream; WARN+ and traced requests always "
        "pass, drops are counted in xks_log_sampled_total",
    )
    p_serve.add_argument(
        "--export-timeout",
        type=float,
        default=5.0,
        metavar="SECS",
        help="connect/read timeout for --export-url POSTs (default 5s)",
    )
    p_serve.add_argument(
        "--snapshot-every",
        type=float,
        default=None,
        metavar="SECS",
        help="ship a full metrics snapshot to the export sink every SECS "
        "seconds (needs --export-jsonl or --export-url)",
    )
    p_serve.add_argument(
        "--snapshot-otlp",
        action="store_true",
        help="shape shipped snapshots as OTLP-style JSON "
        "(resourceMetrics/scopeMetrics) instead of the flat sample list",
    )
    p_serve.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="SPEC",
        help="SLO spec (repeatable), e.g. 'availability:99.9' or "
        "'latency:p99<=250ms:band=1000+:window=30d'; default: the "
        "built-in availability + latency objectives",
    )
    p_serve.add_argument(
        "--no-slo",
        action="store_true",
        help="disable SLO evaluation and burn-rate alerting",
    )
    p_serve.add_argument(
        "--slo-window-scale",
        type=float,
        default=1.0,
        metavar="FACTOR",
        help="multiply every alerting window by FACTOR (test/CI drills: "
        "0.01 turns 5m/1h into 3s/36s)",
    )
    p_serve.add_argument(
        "--debug-latency-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help="inject MS of artificial latency into every query execution "
        "(debug/drill only; shows up in xks_query_exec_ms)",
    )
    p_serve.add_argument(
        "--profile-hz",
        type=float,
        default=0.0,
        metavar="HZ",
        help="sample thread stacks HZ times per second in the parent and "
        "every pool worker; folded flamegraph stacks at GET /debug/pprof "
        "(0 = off)",
    )
    p_serve.add_argument(
        "--alert-webhook",
        metavar="URL",
        help="POST every SLO alert transition record to URL through its "
        "own background pipeline (on top of any --export-* pipeline)",
    )
    p_serve.add_argument(
        "--slo-state",
        metavar="PATH",
        help="persist SLO burn-rate windows to PATH on shutdown and "
        "restore them (staleness-clamped) on startup",
    )
    p_serve.add_argument(
        "--default-timeout-ms",
        type=float,
        default=None,
        metavar="MS",
        help="deadline every search request that does not carry its own "
        "X-Deadline-Ms / ?timeout_ms= budget; expiry answers 504",
    )
    p_serve.add_argument(
        "--verify-checksums",
        action="store_true",
        help="re-checksum every B+tree page and posting block read (in "
        "this process and every pool worker); a corrupt segment block "
        "quarantines the segment and re-answers from the B+tree tier",
    )
    p_serve.add_argument(
        "--admission-soft",
        type=int,
        default=None,
        metavar="N",
        help="in-flight depth past which expensive-|S1|-band queries are "
        "shed with 429 (default 2*workers)",
    )
    p_serve.add_argument(
        "--admission-hard",
        type=int,
        default=None,
        metavar="N",
        help="in-flight depth past which every search request is shed "
        "(default 4*workers)",
    )
    p_serve.add_argument(
        "--p99-watermark-ms",
        type=float,
        default=None,
        metavar="MS",
        help="shed expensive-band queries while the recent-window p99 "
        "exceeds MS (default: off)",
    )
    p_serve.add_argument(
        "--inject-fault",
        action="append",
        default=None,
        metavar="SPEC",
        help="arm a fault-injection spec (repeatable), e.g. "
        "'kill-worker:after=2:times=1' or 'delay-io:every=10:ms=50'; "
        "armed before the pool forks so workers inherit it "
        "(see docs/ROBUSTNESS.md)",
    )
    p_serve.add_argument(
        "--drain-timeout-s",
        type=float,
        default=5.0,
        metavar="SECS",
        help="on SIGTERM, wait up to SECS for in-flight requests before "
        "closing exporters and the pool (default 5)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_fsck = sub.add_parser(
        "fsck",
        help="deep integrity check: structure plus every stored checksum",
    )
    p_fsck.add_argument("index_dir")
    p_fsck.set_defaults(func=_cmd_fsck)

    p_slo = sub.add_parser(
        "slo-status", help="show a running server's SLO/alert state"
    )
    p_slo.add_argument("url", help="server base URL, e.g. http://127.0.0.1:8080")
    p_slo.add_argument("--json", action="store_true", help="print raw /alertz JSON")
    p_slo.add_argument("--timeout", type=float, default=5.0)
    p_slo.set_defaults(func=_cmd_slo_status)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
