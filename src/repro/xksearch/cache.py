"""Query-result and plan caching for the serving layer.

Real keyword-query workloads are heavily skewed: a small set of popular
keyword combinations accounts for most of the traffic.  The paper's demo
recomputed every query from scratch; a production serving layer should pay
the SLCA computation once per distinct query and answer repeats from
memory.  This module provides that layer:

* :class:`LRUCache` — a thread-safe, size-bounded LRU map with hit/miss/
  eviction accounting (:class:`CacheStats`);
* :class:`QueryCache` — a result cache plus a plan cache for
  :class:`~repro.xksearch.engine.QueryEngine`.  Entries are stamped with
  the index *generation* current when they were computed, so a cache can
  be shared across engine instances and survives nothing it shouldn't;
* the **generation registry** — a process-wide counter per index
  directory.  :class:`~repro.index.updates.IndexUpdater` bumps it on every
  mutation (and persists it in the manifest), which atomically stales
  every cached result computed against the older index contents.

Keys are order-insensitive: ``"john ben"`` and ``"ben john"`` share one
entry, because SLCA semantics (and the engine's frequency-based planning)
do not depend on the order keywords were typed in.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Tuple

from repro.obs.logging import get_logger

#: Default number of cached query results (each a tuple of Dewey numbers).
DEFAULT_RESULT_CAPACITY = 1024
#: Default number of cached query plans (plans are tiny; keep more).
DEFAULT_PLAN_CAPACITY = 4096

_log = get_logger("cache")


@dataclass
class CacheStats:
    """Cache effectiveness counters (mirrors the buffer pool's)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.evictions, self.invalidations)

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """Thread-safe size-bounded LRU mapping with stats.

    Values are treated as immutable by convention — callers must not
    mutate what they get back, because the same object is handed to every
    hit (that sharing is the point).
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.capacity = capacity
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._map: "OrderedDict[Hashable, Any]" = OrderedDict()

    def get(self, key: Hashable) -> Tuple[bool, Any]:
        """``(hit, value)`` — a tuple so that ``None`` values stay cacheable."""
        with self._lock:
            if key in self._map:
                self.stats.hits += 1
                self._map.move_to_end(key)
                return True, self._map[key]
            self.stats.misses += 1
            return False, None

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            if key in self._map:
                self._map[key] = value
                self._map.move_to_end(key)
                return
            self._map[key] = value
            while len(self._map) > self.capacity:
                self._map.popitem(last=False)
                self.stats.evictions += 1

    def get_stamped(self, key: Hashable, generation: int) -> Tuple[bool, Any]:
        """Lookup of a ``(generation, value)`` entry stored by
        :meth:`put_stamped`: an entry stamped with a different generation is
        a miss — it is dropped and counted as an invalidation."""
        stale_generation = None
        with self._lock:
            entry = self._map.get(key)
            if entry is not None and entry[0] == generation:
                self.stats.hits += 1
                self._map.move_to_end(key)
                return True, entry[1]
            self.stats.misses += 1
            if entry is not None:
                del self._map[key]
                self.stats.invalidations += 1
                stale_generation = entry[0]
        if stale_generation is not None and _log.enabled_for("debug"):
            _log.debug(
                "cache_entry_invalidated",
                stale_generation=stale_generation,
                current_generation=generation,
            )
        return False, None

    def put_stamped(self, key: Hashable, generation: int, value: Any) -> None:
        self.put(key, (generation, value))

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry (a stale generation was observed)."""
        with self._lock:
            if key in self._map:
                del self._map[key]
                self.stats.invalidations += 1
                return True
            return False

    def clear(self) -> None:
        with self._lock:
            self._map.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._map)


# -- generation registry ------------------------------------------------------
#
# One monotonically increasing counter per index directory, shared by every
# reader and writer in the process.  Writers bump it on mutation; cached
# entries remember the generation they were computed under and are treated
# as misses (and dropped) once the counters diverge.  The counter is also
# persisted in the index manifest so that a new process starts from the
# latest value rather than from zero.

_generation_lock = threading.Lock()
_generations: dict = {}


def _generation_key(index_dir) -> str:
    return os.path.realpath(os.fspath(index_dir))


def current_generation(index_dir) -> int:
    """The index directory's current generation (0 if never seen)."""
    with _generation_lock:
        return _generations.get(_generation_key(index_dir), 0)


def bump_generation(index_dir) -> int:
    """Record one mutation of the index directory; returns the new value."""
    key = _generation_key(index_dir)
    with _generation_lock:
        _generations[key] = _generations.get(key, 0) + 1
        return _generations[key]


def seed_generation(index_dir, generation: int) -> int:
    """Merge a persisted generation (from the manifest) into the registry.

    Max-merge, so an already-bumped in-process counter never goes
    backwards; returns the effective value.
    """
    key = _generation_key(index_dir)
    with _generation_lock:
        _generations[key] = max(_generations.get(key, 0), int(generation))
        return _generations[key]


# -- query-level caches -------------------------------------------------------


def normalize_key(atom_displays: Iterable[str], algorithm: str, semantics: str = "slca"):
    """Canonical cache key for a query: order-insensitive atom set plus the
    requested algorithm and result semantics."""
    return (semantics, algorithm, tuple(sorted(set(atom_displays))))


class QueryCache:
    """Result + plan cache with generation-based invalidation.

    One instance serves one index (or one generation domain); it may be
    shared by any number of :class:`~repro.xksearch.engine.QueryEngine`
    instances and threads.  Entries are ``(generation, value)`` pairs; a
    lookup under a newer generation is a miss and drops the stale entry.
    """

    def __init__(
        self,
        result_capacity: int = DEFAULT_RESULT_CAPACITY,
        plan_capacity: int = DEFAULT_PLAN_CAPACITY,
    ):
        self.results = LRUCache(result_capacity)
        self.plans = LRUCache(plan_capacity)

    # -- results -------------------------------------------------------------

    def lookup_result(self, key: Hashable, generation: int) -> Tuple[bool, Any]:
        return self.results.get_stamped(key, generation)

    def store_result(self, key: Hashable, generation: int, value: Any) -> None:
        self.results.put_stamped(key, generation, value)

    # -- plans ---------------------------------------------------------------

    def lookup_plan(self, key: Hashable, generation: int) -> Tuple[bool, Any]:
        return self.plans.get_stamped(key, generation)

    def store_plan(self, key: Hashable, generation: int, value: Any) -> None:
        self.plans.put_stamped(key, generation, value)

    def clear(self) -> None:
        self.results.clear()
        self.plans.clear()

    def stats(self) -> dict:
        """Nested stats dict (JSON-friendly, for ``/statz`` and benchmarks)."""
        return {
            "results": self.results.stats.as_dict(),
            "plans": self.plans.stats.as_dict(),
            "entries": {"results": len(self.results), "plans": len(self.plans)},
        }
