"""HTML rendering of search results — the demo's presentation layer.

The paper's XKSearch demo "runs as a Java Servlet ... the Xalan engine is
used to translate XML results to HTML".  This module is that translation
step in Python: one self-contained HTML page per query, with the plan
summary, each SLCA's path and Dewey id, and the answer subtree rendered as
escaped XML with the query keywords highlighted.

Everything is escaped before interpolation; the only markup injected into
user-derived content is the ``<mark>`` highlighting, applied token-wise
after escaping.
"""

from __future__ import annotations

import html
import re
from typing import Iterable, List, Optional, Sequence

from repro.xksearch.engine import QueryPlan
from repro.xksearch.results import SearchResult
from repro.xmltree.dewey import Dewey

_PAGE_CSS = """
body { font-family: Georgia, serif; margin: 2rem auto; max-width: 52rem;
       color: #222; }
h1 { font-size: 1.4rem; }
form input[type=text] { width: 24rem; font-size: 1rem; padding: .3rem; }
.plan { color: #555; font-size: .9rem; margin: .5rem 0 1.5rem; }
.result { border: 1px solid #ccc; border-radius: 6px; padding: .8rem 1rem;
          margin-bottom: 1rem; }
.result h2 { font-size: 1rem; margin: 0 0 .5rem; }
.result .id { color: #888; font-weight: normal; }
pre.snippet { background: #f7f7f2; padding: .6rem; overflow-x: auto;
              font-size: .85rem; line-height: 1.35; }
mark { background: #ffe08a; padding: 0 .1rem; }
.empty { color: #777; font-style: italic; }
footer { margin-top: 2rem; color: #999; font-size: .8rem; }
"""

_WORD_RE = re.compile(r"[A-Za-z0-9_]+")


def highlight(text: str, keywords: Iterable[str]) -> str:
    """HTML-escape *text* and wrap whole-word keyword matches in <mark>.

    Matching is case-insensitive on alphanumeric tokens — the same
    tokenization the index uses, so exactly the indexed occurrences light
    up.
    """
    wanted = {kw.lower() for kw in keywords}
    out: List[str] = []
    last = 0
    for match in _WORD_RE.finditer(text):
        out.append(html.escape(text[last:match.start()]))
        token = match.group(0)
        if token.lower() in wanted:
            out.append(f"<mark>{html.escape(token)}</mark>")
        else:
            out.append(html.escape(token))
        last = match.end()
    out.append(html.escape(text[last:]))
    return "".join(out)


def render_result(result: SearchResult, keywords: Sequence[str]) -> str:
    """One answer card."""
    title = html.escape(result.path or "answer")
    dewey = html.escape(str(Dewey(result.dewey)))
    parts = [f'<div class="result"><h2>{title} <span class="id">({dewey})</span></h2>']
    if result.snippet:
        parts.append(
            f'<pre class="snippet">{highlight(result.snippet.rstrip(), keywords)}</pre>'
        )
    if result.witnesses:
        summary = ", ".join(
            f"{html.escape(kw)}: {len(hits)}" for kw, hits in result.witnesses.items()
        )
        parts.append(f'<div class="plan">matches — {summary}</div>')
    parts.append("</div>")
    return "".join(parts)


def render_page(
    query: str,
    results: Sequence[SearchResult],
    plan: Optional[QueryPlan] = None,
    elapsed_ms: Optional[float] = None,
    title: str = "XKSearch",
) -> str:
    """A complete results page (also the empty-query landing page)."""
    safe_query = html.escape(query, quote=True)
    keywords: List[str] = []
    if plan is not None:
        keywords = [kw.split(":", 1)[-1] for kw in plan.keywords]
    body: List[str] = [
        f"<h1>{html.escape(title)} — keyword search for smallest LCAs</h1>",
        '<form method="get" action="/search">',
        f'<input type="text" name="q" value="{safe_query}" autofocus/> ',
        '<input type="submit" value="Search"/></form>',
    ]
    if plan is not None:
        timing = f" in {elapsed_ms:.2f} ms" if elapsed_ms is not None else ""
        body.append(
            '<div class="plan">'
            f"algorithm <b>{html.escape(plan.algorithm)}</b>, keyword order "
            f"{html.escape(', '.join(plan.keywords))} "
            f"(frequencies {html.escape(', '.join(map(str, plan.frequencies)))})"
            f" — {len(results)} answer(s){timing}</div>"
        )
    if query and not results:
        body.append('<p class="empty">No subtree contains all the keywords.</p>')
    for result in results:
        body.append(render_result(result, keywords))
    body.append(
        "<footer>Xu &amp; Papakonstantinou, SIGMOD 2005 — Python reproduction</footer>"
    )
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'/>"
        f"<title>{html.escape(title)}</title><style>{_PAGE_CSS}</style></head>"
        f"<body>{''.join(body)}</body></html>"
    )
