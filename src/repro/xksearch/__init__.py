"""The XKSearch system: query engine, result rendering, collections, CLI."""

from repro.xksearch.cache import CacheStats, LRUCache, QueryCache
from repro.xksearch.collection import CollectionResult, XMLCollection
from repro.xksearch.engine import (
    ExecutionStats,
    QueryEngine,
    QueryPlan,
    normalize_query,
)
from repro.xksearch.engine import QueryAtom, parse_query
from repro.xksearch.parallel import WorkerPool
from repro.xksearch.ranking import RankedResult, rank_results
from repro.xksearch.results import SearchResult, decorate_result
from repro.xksearch.shared_cache import SharedResultCache
from repro.xksearch.system import XKSearch

__all__ = [
    "CacheStats",
    "CollectionResult",
    "ExecutionStats",
    "LRUCache",
    "QueryCache",
    "QueryEngine",
    "QueryAtom",
    "QueryPlan",
    "RankedResult",
    "SearchResult",
    "SharedResultCache",
    "WorkerPool",
    "XKSearch",
    "XMLCollection",
    "decorate_result",
    "parse_query",
    "rank_results",
    "normalize_query",
]
