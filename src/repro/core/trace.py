"""Execution tracing for Indexed Lookup Eager — the paper's example, live.

Section 3.1 walks through the algorithm on the School.xml example: each
node ``v`` of the smallest list generates a candidate via left/right
matches, and Lemmas 1/2 decide the candidate's fate.  :func:`traced_slca`
replays exactly that narrative for any input, recording every match
lookup, LCA computation and lemma decision; :func:`format_trace` renders
it as the step-by-step table the paper prints.  Useful for teaching,
debugging, and as an executable specification (the trace's outcome is
asserted to equal the production algorithm's).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.sources import SortedListSource
from repro.core.counters import OpCounters
from repro.xmltree.dewey import DeweyTuple, lca


def _dotted(dewey: Optional[DeweyTuple]) -> str:
    if dewey is None:
        return "-"
    return ".".join(map(str, dewey))


@dataclass
class MatchStep:
    """One list probed during a candidate computation."""

    list_index: int              # 1-based index of the probed list (S2…Sk)
    probe: DeweyTuple            # the x the list was probed with
    left_match: Optional[DeweyTuple]
    right_match: Optional[DeweyTuple]
    left_lca: Optional[DeweyTuple]
    right_lca: Optional[DeweyTuple]
    chosen: DeweyTuple           # deeper(left_lca, right_lca)


@dataclass
class CandidateStep:
    """Everything that happened for one node of S1."""

    v: DeweyTuple
    matches: List[MatchStep]
    candidate: DeweyTuple
    decision: str                # "hold" | "emit+hold" | "replace" | "discard"
    emitted: Optional[DeweyTuple] = None
    rule: str = ""               # which lemma justified the decision


@dataclass
class SLCATrace:
    """A full run: steps plus the final answer."""

    steps: List[CandidateStep] = field(default_factory=list)
    results: List[DeweyTuple] = field(default_factory=list)


def traced_slca(keyword_lists: Sequence[Sequence[DeweyTuple]]) -> SLCATrace:
    """Run Indexed Lookup Eager, recording every step.

    Lists are ordered smallest-first, as the engine would.  The recorded
    outcome is bit-identical to :func:`repro.core.indexed_lookup_slca`.
    """
    trace = SLCATrace()
    if not keyword_lists or any(not lst for lst in keyword_lists):
        return trace
    ordered = sorted(keyword_lists, key=len)
    counters = OpCounters()
    others = [SortedListSource(lst, counters) for lst in ordered[1:]]

    held: Optional[DeweyTuple] = None
    for v in ordered[0]:
        matches: List[MatchStep] = []
        x = v
        for i, source in enumerate(others, start=2):
            left = source.lm(x)
            right = source.rm(x)
            left_lca = lca(x, left) if left is not None else None
            right_lca = lca(x, right) if right is not None else None
            if left_lca is None:
                chosen = right_lca
            elif right_lca is None or len(left_lca) >= len(right_lca):
                chosen = left_lca
            else:
                chosen = right_lca
            matches.append(
                MatchStep(i, x, left, right, left_lca, right_lca, chosen)
            )
            x = chosen
        step = CandidateStep(v=v, matches=matches, candidate=x, decision="")
        if held is None:
            step.decision = "hold"
            step.rule = "first candidate"
            held = x
        elif x > held:
            if held != x[: len(held)]:
                step.decision = "emit+hold"
                step.rule = "Lemma 2: held candidate cannot be an ancestor of later ones"
                step.emitted = held
                trace.results.append(held)
            else:
                step.decision = "replace"
                step.rule = "held candidate is an ancestor of the new one"
            held = x
        else:
            step.decision = "discard"
            step.rule = "Lemma 1: out-of-order candidate is an ancestor-or-self"
        trace.steps.append(step)
    if held is not None:
        trace.results.append(held)
    return trace


def format_trace(trace: SLCATrace, show_matches: bool = True) -> str:
    """Render a trace the way the paper narrates its running example."""
    lines: List[str] = []
    for number, step in enumerate(trace.steps, start=1):
        lines.append(f"step {number}: v = {_dotted(step.v)}")
        if show_matches:
            for match in step.matches:
                lines.append(
                    f"  S{match.list_index}: lm({_dotted(match.probe)}) = "
                    f"{_dotted(match.left_match)}, rm = {_dotted(match.right_match)}"
                    f" -> lca {_dotted(match.left_lca)} / {_dotted(match.right_lca)}"
                    f", deeper = {_dotted(match.chosen)}"
                )
        lines.append(f"  candidate = {_dotted(step.candidate)}  [{step.decision}]")
        if step.emitted is not None:
            lines.append(f"  => SLCA confirmed: {_dotted(step.emitted)}")
        lines.append(f"     ({step.rule})")
    if trace.results:
        final = trace.results[-1]
        lines.append(f"end of S1: held candidate {_dotted(final)} is an SLCA")
        lines.append("answer: [" + ", ".join(_dotted(r) for r in trace.results) + "]")
    else:
        lines.append("answer: []")
    return "\n".join(lines)
