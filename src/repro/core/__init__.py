"""The paper's algorithms: Indexed Lookup Eager, Scan Eager, Stack and
Algorithm 3 (all-LCA), plus the brute-force oracles and operation counters.

Quick use over in-memory keyword lists::

    from repro.core import slca
    answers = slca([list_john, list_ben])            # Indexed Lookup Eager
    answers = slca(lists, algorithm="scan")          # Scan Eager
    answers = slca(lists, algorithm="stack")         # Stack baseline
"""

from typing import List, Optional, Sequence

from repro.core.all_lca import all_lca, check_lca, find_all_lcas
from repro.core.brute import (
    all_lca_by_containment,
    brute_lca_set,
    brute_slca,
    remove_ancestors,
    slca_by_containment,
)
from repro.core.counters import OpCounters
from repro.core.elca import elca, elca_by_containment, stack_elca
from repro.core.indexed_lookup import (
    eager_slca,
    indexed_lookup_blocked,
    indexed_lookup_eager,
    indexed_lookup_slca,
    slca_candidate,
)
from repro.core.scan_eager import scan_eager, scan_eager_slca
from repro.core.sources import (
    CursorListSource,
    MatchSource,
    SortedListSource,
    memory_sources,
)
from repro.core.stack import stack_slca
from repro.core.trace import SLCATrace, format_trace, traced_slca
from repro.errors import QueryError
from repro.xmltree.dewey import DeweyTuple

ALGORITHMS = ("il", "scan", "stack")


def slca(
    keyword_lists: Sequence[Sequence[DeweyTuple]],
    algorithm: str = "il",
    counters: Optional[OpCounters] = None,
) -> List[DeweyTuple]:
    """Smallest LCAs of the keyword lists, by any of the three algorithms.

    ``algorithm`` is one of ``"il"`` (Indexed Lookup Eager), ``"scan"``
    (Scan Eager) or ``"stack"``.  Results are in document order and
    identical across algorithms; only the cost profile differs.
    """
    if algorithm == "il":
        return indexed_lookup_slca(keyword_lists, counters)
    if algorithm == "scan":
        return scan_eager_slca(keyword_lists, counters)
    if algorithm == "stack":
        return list(stack_slca(keyword_lists, counters))
    raise QueryError(f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}")


__all__ = [
    "ALGORITHMS",
    "CursorListSource",
    "MatchSource",
    "OpCounters",
    "SortedListSource",
    "all_lca",
    "all_lca_by_containment",
    "brute_lca_set",
    "brute_slca",
    "check_lca",
    "eager_slca",
    "elca",
    "elca_by_containment",
    "stack_elca",
    "find_all_lcas",
    "indexed_lookup_blocked",
    "indexed_lookup_eager",
    "indexed_lookup_slca",
    "memory_sources",
    "remove_ancestors",
    "scan_eager",
    "scan_eager_slca",
    "slca",
    "slca_by_containment",
    "slca_candidate",
    "SLCATrace",
    "format_trace",
    "stack_slca",
    "traced_slca",
]
