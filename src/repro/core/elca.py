"""ELCA semantics — the XRANK baseline's original answer set.

The Stack algorithm of Section 3.3 is the paper's modification of XRANK's
DIL, which originally computed **Exclusive LCAs**: a node ``v`` is an ELCA
iff it has a witness occurrence of *every* keyword that is not swallowed
by a satisfied descendant — i.e. for each keyword some node under ``v``
that is not under any proper descendant of ``v`` whose subtree already
contains all keywords.  ELCA is sandwiched between the paper's two
semantics::

    SLCA  ⊆  ELCA  ⊆  LCA

(every smallest answer is exclusive; every exclusive answer is the LCA of
one of its witness combinations).  Implementing it completes the XRANK
comparison: the same sort-merge stack computes ELCAs by *not* folding a
satisfied entry's occurrences into its parent, so ancestors only qualify
through their own unswallowed occurrences.

This module provides the stack-based :func:`stack_elca` and the
brute-force :func:`elca_by_containment` oracle the property tests compare
it against.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Sequence, Set

from repro.core.counters import OpCounters
from repro.core.stack import _merge_with_masks
from repro.robustness.deadline import checkpoint
from repro.xmltree.dewey import DeweyTuple


def stack_elca(
    keyword_lists: Sequence[Sequence[DeweyTuple]],
    counters: Optional[OpCounters] = None,
) -> Iterator[DeweyTuple]:
    """ELCAs of the keyword lists via the XRANK sort-merge stack.

    Identical merge structure to :func:`repro.core.stack.stack_slca`, but
    each stack entry carries *two* masks: the raw containment mask (which
    keywords occur anywhere in the entry's subtree) and the exclusive mask
    (which keywords have an occurrence not claimed by a satisfied
    descendant).  On pop, the raw mask always folds into the parent, while
    the exclusive mask folds only if the entry is unsatisfied — a satisfied
    subtree swallows its occurrences whether or not it is itself an ELCA.
    An entry is reported iff both masks are complete.

    Unlike the SLCA result, ELCAs are not an antichain: an ancestor pops
    (and is emitted) only after its descendants, so the stream is in
    bottom-up pop order, not global document order — use :func:`elca` for
    a sorted answer.
    """
    counters = counters if counters is not None else OpCounters()
    if not keyword_lists:
        raise ValueError("at least one keyword list is required")
    lists: List[Iterator[DeweyTuple]] = []
    for lst in keyword_lists:
        iterator = iter(lst)
        head = next(iterator, None)
        if head is None:
            return
        lists.append(itertools.chain((head,), iterator))
    full = (1 << len(lists)) - 1

    path: List[int] = []
    raw_masks: List[int] = []
    excl_masks: List[int] = []
    emitted: List[DeweyTuple] = []

    def pop() -> None:
        node = tuple(path)
        path.pop()
        raw = raw_masks.pop()
        exclusive = excl_masks.pop()
        if raw == full and exclusive == full:
            counters.results += 1
            emitted.append(node)
        if raw_masks:
            raw_masks[-1] |= raw
            if raw != full:
                excl_masks[-1] |= exclusive

    for dewey, mask in _merge_with_masks(lists):
        checkpoint("execute")
        counters.nodes_merged += 1
        counters.lca_ops += 1
        keep = 0
        limit = min(len(path), len(dewey))
        while keep < limit and path[keep] == dewey[keep]:
            keep += 1
        while len(path) > keep:
            pop()
        for component in dewey[len(path):]:
            path.append(component)
            raw_masks.append(0)
            excl_masks.append(0)
        raw_masks[-1] |= mask
        excl_masks[-1] |= mask
        if emitted:
            yield from emitted
            emitted.clear()
    while path:
        pop()
    yield from emitted


def elca(
    keyword_lists: Sequence[Sequence[DeweyTuple]],
    counters: Optional[OpCounters] = None,
) -> List[DeweyTuple]:
    """ELCAs of the keyword lists, in document order."""
    return sorted(stack_elca(keyword_lists, counters))


def elca_by_containment(
    keyword_lists: Sequence[Sequence[DeweyTuple]],
) -> Set[DeweyTuple]:
    """Brute-force ELCA oracle, straight from the definition.

    For each satisfied node ``v``, keyword ``i`` has an *exclusive witness*
    iff some ``x ∈ Si`` lies under-or-at ``v`` with no satisfied node
    strictly between ``v`` and ``x`` (inclusive of ``x``); ``v`` is an ELCA
    iff every keyword has one.  Quadratic in the ancestor set — fine for
    the randomized test sizes.
    """
    if not keyword_lists:
        raise ValueError("at least one keyword list is required")
    k = len(keyword_lists)
    full = (1 << k) - 1
    masks = {}
    for i, lst in enumerate(keyword_lists):
        bit = 1 << i
        for node in lst:
            for depth in range(1, len(node) + 1):
                prefix = node[:depth]
                masks[prefix] = masks.get(prefix, 0) | bit
    satisfied = {node for node, mask in masks.items() if mask == full}

    result: Set[DeweyTuple] = set()
    for v in satisfied:
        is_elca = True
        for lst in keyword_lists:
            has_exclusive_witness = False
            for x in lst:
                if x[: len(v)] != v:
                    continue
                swallowed = any(
                    x[:depth] in satisfied for depth in range(len(v) + 1, len(x) + 1)
                )
                if not swallowed:
                    has_exclusive_witness = True
                    break
            if not has_exclusive_witness:
                is_elca = False
                break
        if is_elca:
            result.add(v)
    return result
