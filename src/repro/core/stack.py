"""The Stack algorithm (Section 3.3) — the prior-work baseline.

The stack-based sort-merge algorithm of XRANK (Guo et al., SIGMOD 2003,
there called DIL) modified to compute SLCAs.  All keyword lists are merged
in document order; a stack holds the Dewey components of the path from the
root to the most recent node.  Each stack entry carries

* a bitmask of the keyword lists already seen inside the entry's subtree,
* a flag recording whether an SLCA was already found below the entry.

When the merge moves past an entry's subtree the entry is popped: if it has
an SLCA below it, it only propagates that fact upward (its ancestors can
never be *smallest*); otherwise, if its mask is complete it *is* an SLCA and
is emitted; otherwise its mask folds into its parent.

Cost is ``O(k·d·Σ|Si|)``: the merge touches every node of every list —
which is exactly why the paper's Indexed Lookup Eager wins by orders of
magnitude when one list is much smaller than the rest.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.counters import OpCounters
from repro.robustness.deadline import checkpoint
from repro.xmltree.dewey import DeweyTuple


def _merge_with_masks(
    keyword_lists: Sequence[Iterator[DeweyTuple]],
) -> Iterator[Tuple[DeweyTuple, int]]:
    """Merge sorted lists into (dewey, keyword-bitmask) pairs.

    A node occurring in several lists (its label matches several query
    keywords) is emitted once with the union mask.
    """
    def tag(lst: Iterator[DeweyTuple], bit: int):
        for dewey in lst:
            yield dewey, bit

    tagged = [tag(lst, 1 << i) for i, lst in enumerate(keyword_lists)]
    pending: Optional[DeweyTuple] = None
    mask = 0
    for dewey, bit in heapq.merge(*tagged):
        if dewey == pending:
            mask |= bit
            continue
        if pending is not None:
            yield pending, mask
        pending, mask = dewey, bit
    if pending is not None:
        yield pending, mask


def stack_slca(
    keyword_lists: Sequence[Sequence[DeweyTuple]],
    counters: Optional[OpCounters] = None,
) -> Iterator[DeweyTuple]:
    """SLCAs of the keyword lists via the Stack algorithm.

    Accepts the raw lists (or any iterables yielding Dewey tuples in
    ascending order) — the algorithm reads every element exactly once, so no
    match-source indirection is needed.  Yields SLCAs in document order.
    """
    counters = counters if counters is not None else OpCounters()
    if not keyword_lists:
        raise ValueError("at least one keyword list is required")
    # Peek one element per list: an empty list means no answers, and the
    # merge itself stays lazy so answers stream before input is exhausted.
    lists: List[Iterator[DeweyTuple]] = []
    for lst in keyword_lists:
        iterator = iter(lst)
        head = next(iterator, None)
        if head is None:
            return
        lists.append(itertools.chain((head,), iterator))
    full = (1 << len(lists)) - 1

    # Parallel stacks: path components, seen-masks, slca-below flags.
    path: List[int] = []
    masks: List[int] = []
    below: List[bool] = []
    emitted: List[DeweyTuple] = []

    def pop() -> None:
        node = tuple(path)
        path.pop()
        mask = masks.pop()
        found_below = below.pop()
        if found_below:
            if below:
                below[-1] = True
        elif mask == full:
            counters.results += 1
            emitted.append(node)
            if below:
                below[-1] = True
        elif masks:
            masks[-1] |= mask

    for dewey, mask in _merge_with_masks(lists):
        checkpoint("execute")
        counters.nodes_merged += 1
        # Longest common prefix with the current stack path: one Dewey
        # comparison per arriving node, as in XRANK.
        counters.lca_ops += 1
        keep = 0
        limit = min(len(path), len(dewey))
        while keep < limit and path[keep] == dewey[keep]:
            keep += 1
        while len(path) > keep:
            pop()
        for component in dewey[len(path):]:
            path.append(component)
            masks.append(0)
            below.append(False)
        masks[-1] |= mask
        if emitted:
            yield from emitted
            emitted.clear()
    while path:
        pop()
    yield from emitted
