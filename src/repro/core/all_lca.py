"""Algorithm 3: computing *all* LCAs (Section 5).

The all-LCA problem returns every node that is the LCA of some combination
``(n1, …, nk)``, ``ni ∈ Si`` — not only the smallest ones.  The paper's key
observations:

* every LCA is an ancestor-or-self of some SLCA, so the SLCA stream from
  Indexed Lookup Eager enumerates exactly the right paths to inspect;
* whether an ancestor ``u`` of an SLCA ``s`` is an LCA can be decided with
  at most two indexed lookups per keyword (:func:`check_lca`): ``u`` is an
  LCA iff some keyword list has a node inside ``u``'s subtree but outside
  the subtree of ``c``, the child of ``u`` on the path to ``s``.  The nodes
  under ``u`` but outside ``c`` split into a *left part* (document order in
  ``[u, c)`` — probed with ``rm(u)``) and a *right part* (at or after the
  *uncle* of ``s`` under ``u``, the Dewey successor of ``c`` among its
  siblings — probed with ``rm(uncle)``);
* walking each SLCA's ancestor path only up to ``lca(current, next)``
  visits every ancestor of every SLCA exactly once, because an ancestor
  shared with the next SLCA sits at or above that boundary and will be
  visited later.

The result is pipelined: each SLCA is followed immediately by those of its
exclusive ancestors that qualify.  Disk accesses: ``O(k·d·|slca|)`` lookups
on top of IL's ``O(k·|S1|)``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.core.counters import OpCounters
from repro.core.indexed_lookup import eager_slca
from repro.core.sources import MatchSource, SortedListSource
from repro.robustness.deadline import checkpoint
from repro.xmltree.dewey import (
    DeweyTuple,
    ancestors,
    child_toward,
    is_ancestor_or_self,
    lca,
    uncle,
)


def check_lca(
    u: DeweyTuple,
    s: DeweyTuple,
    sources: Sequence[MatchSource],
    counters: OpCounters,
) -> bool:
    """Is the proper ancestor *u* of the SLCA *s* an LCA of the lists?

    True iff some list has a node in ``u``'s subtree outside the child
    subtree leading to *s* (then that node, combined with witnesses inside
    ``s``, meets exactly at ``u``).
    """
    c = child_toward(u, s)
    unc = uncle(u, s)
    for source in sources:
        left_hit = source.rm(u)
        if left_hit is not None and left_hit < c:
            return True
        right_hit = source.rm(unc)
        if right_hit is not None and is_ancestor_or_self(u, right_hit):
            return True
    return False


def find_all_lcas(
    sources: Sequence[MatchSource],
    counters: Optional[OpCounters] = None,
) -> Iterator[DeweyTuple]:
    """All LCAs of the keyword lists, pipelined (Algorithm 3).

    Yields each SLCA (every SLCA is an LCA) followed by its qualifying
    exclusive ancestors, bottom-up.  The overall output is therefore *not*
    in document order; callers needing order should sort.  Requires sources
    supporting ``rm`` (indexed lookups), with the smallest list first.
    """
    counters = counters if counters is not None else OpCounters()
    if len(sources) == 1:
        # Each node is the LCA of the combination consisting of itself, so
        # the answer is the whole list — no ancestor checks apply.
        yield from sources[0].scan()
        return
    slcas = eager_slca(sources, counters)
    current = next(slcas, None)
    if current is None:
        return
    for nxt in slcas:
        checkpoint("execute")
        yield current
        boundary = lca(current, nxt)
        for ancestor in ancestors(current, stop=boundary):
            if check_lca(ancestor, current, sources, counters):
                yield ancestor
        current = nxt
    yield current
    for ancestor in ancestors(current):
        if check_lca(ancestor, current, sources, counters):
            yield ancestor


def all_lca(
    keyword_lists: Sequence[Sequence[DeweyTuple]],
    counters: Optional[OpCounters] = None,
) -> List[DeweyTuple]:
    """Convenience wrapper over in-memory lists; returns document order."""
    counters = counters if counters is not None else OpCounters()
    ordered = sorted(keyword_lists, key=len)
    sources = [SortedListSource(lst, counters) for lst in ordered]
    return sorted(find_all_lcas(sources, counters))
