"""Brute-force oracles for SLCA and all-LCA.

Two *independent* reference implementations of each semantics back the
property-based tests: the paper's definitional brute force (enumerate every
node combination, ``O(d·Π|Si|)``, usable only on tiny inputs) and a
linear-time characterization working directly on ancestor sets.  All three
production algorithms must agree with both on randomized inputs.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence, Set

from repro.xmltree.dewey import DeweyTuple, lca_many

#: Safety valve for the combinatorial oracle.
MAX_COMBINATIONS = 200_000


def _check_lists(keyword_lists: Sequence[Sequence[DeweyTuple]]) -> None:
    if not keyword_lists:
        raise ValueError("at least one keyword list is required")


def brute_lca_set(keyword_lists: Sequence[Sequence[DeweyTuple]]) -> Set[DeweyTuple]:
    """Every LCA of the keyword lists, by definition.

    ``lca(S1, …, Sk)`` — the set of nodes that are the LCA of at least one
    combination ``(n1, …, nk)`` with ``ni ∈ Si``.  Exponential; guarded by
    :data:`MAX_COMBINATIONS`.
    """
    _check_lists(keyword_lists)
    combos = 1
    for lst in keyword_lists:
        combos *= len(lst)
        if combos == 0:
            return set()
    if combos > MAX_COMBINATIONS:
        raise ValueError(f"{combos} combinations exceed the brute-force cap")
    return {lca_many(combo) for combo in itertools.product(*keyword_lists)}


def remove_ancestors(nodes: Set[DeweyTuple]) -> Set[DeweyTuple]:
    """Drop every node that is a proper ancestor of another node in the set.

    This is the paper's ``removeAncestor``: applied to the LCA set it yields
    the SLCA set.  Implemented by one pass over the nodes in document order:
    a node has a proper descendant in the set iff its immediate successor in
    sorted order extends it (descendants sort directly after their ancestor).
    """
    ordered = sorted(nodes)
    kept = set()
    for i, node in enumerate(ordered):
        has_descendant = (
            i + 1 < len(ordered)
            and len(ordered[i + 1]) > len(node)
            and ordered[i + 1][: len(node)] == node
        )
        if not has_descendant:
            kept.add(node)
    return kept


def brute_slca(keyword_lists: Sequence[Sequence[DeweyTuple]]) -> Set[DeweyTuple]:
    """The paper's definitional SLCA: ``removeAncestor(lca(S1, …, Sk))``."""
    return remove_ancestors(brute_lca_set(keyword_lists))


def _satisfaction_masks(
    keyword_lists: Sequence[Sequence[DeweyTuple]],
) -> Dict[DeweyTuple, int]:
    """For every ancestor-or-self of any listed node: bitmask of the keyword
    lists with a node inside its subtree."""
    masks: Dict[DeweyTuple, int] = {}
    for i, lst in enumerate(keyword_lists):
        bit = 1 << i
        for node in lst:
            for depth in range(1, len(node) + 1):
                prefix = node[:depth]
                masks[prefix] = masks.get(prefix, 0) | bit
    return masks


def slca_by_containment(
    keyword_lists: Sequence[Sequence[DeweyTuple]],
) -> Set[DeweyTuple]:
    """SLCA via the smallest-answer-subtree definition (the second oracle).

    A node is *satisfied* when its subtree contains at least one node from
    every list; the SLCAs are the satisfied nodes without a satisfied proper
    descendant.  Linear in total list size times depth — no combination
    enumeration, hence structurally unrelated to :func:`brute_slca`.
    """
    _check_lists(keyword_lists)
    full = (1 << len(keyword_lists)) - 1
    masks = _satisfaction_masks(keyword_lists)
    satisfied = {node for node, mask in masks.items() if mask == full}
    return remove_ancestors(satisfied)


def all_lca_by_containment(
    keyword_lists: Sequence[Sequence[DeweyTuple]],
) -> Set[DeweyTuple]:
    """All-LCA via a structural characterization (oracle for Algorithm 3).

    A satisfied node ``u`` is an LCA of the lists iff some combination's LCA
    is exactly ``u``, which holds iff ``u``'s own label matches one of the
    keywords, or the witnesses cannot all be confined to one child subtree —
    i.e. it is *not* the case that every keyword's nodes under ``u`` live
    under one common child.
    """
    _check_lists(keyword_lists)
    k = len(keyword_lists)
    if k == 1:
        # A single-list combination is a single node, its own LCA.
        return set(keyword_lists[0])
    full = (1 << k) - 1
    masks = _satisfaction_masks(keyword_lists)
    listed: List[Set[DeweyTuple]] = [set(lst) for lst in keyword_lists]

    result: Set[DeweyTuple] = set()
    for node, mask in masks.items():
        if mask != full:
            continue
        if any(node in s for s in listed):
            result.add(node)
            continue
        # Which children of `node` serve each keyword?  If a single child
        # can serve all of them, every keyword must ALSO be servable outside
        # that child for `node` to be an exact LCA.
        child_sets: List[Set[DeweyTuple]] = []
        for lst in keyword_lists:
            children = {
                n[: len(node) + 1]
                for n in lst
                if len(n) > len(node) and n[: len(node)] == node
            }
            child_sets.append(children)
        union = set().union(*child_sets)
        confined = any(all(cs == {c} for cs in child_sets) for c in union)
        if not confined:
            result.add(node)
    return result
