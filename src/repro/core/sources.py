"""Match sources: where the algorithms get ``lm`` / ``rm`` / scans from.

The paper's algorithms are defined over keyword lists ``S1 … Sk`` accessed
through three primitives:

* ``rm(v, S)`` — *right match*: the node of ``S`` with the smallest id
  greater than or equal to ``v``;
* ``lm(v, S)`` — *left match*: the node of ``S`` with the biggest id less
  than or equal to ``v``;
* an ordered scan of the whole list (used by Scan Eager's cursors and by
  the Stack algorithm's sort-merge).

A :class:`MatchSource` packages one keyword list behind those primitives.
Two in-memory implementations live here — binary-search lookups for Indexed
Lookup Eager and forward cursors for Scan Eager; the disk-backed
implementations in :mod:`repro.index.inverted` (B+tree descents) and
:mod:`repro.index.segments` (packed posting segments) expose the same
interface.  All implementations share an :class:`OpCounters` so a query's
operation profile can be compared with Table 1.

The module also hosts the galloping (exponential) search helpers the
packed sources use for in-block probes: IL's probes into one list arrive
in near-ascending order, so searching outward from the previous hit
costs ``O(log d)`` in the probe distance ``d`` rather than ``O(log n)``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator, List, Optional, Protocol, Sequence

from repro.core.counters import OpCounters
from repro.xmltree.dewey import DeweyTuple


def gallop_rightmost_le(
    nodes: Sequence[DeweyTuple], v: DeweyTuple, hint: int = 0
) -> int:
    """Index of the rightmost element ``<= v``, or ``-1`` if none.

    Exponential search outward from *hint* (clamped into range), then a
    bisect within the located bracket.
    """
    n = len(nodes)
    if n == 0:
        return -1
    i = min(max(hint, 0), n - 1)
    if nodes[i] <= v:
        lo, hi, step = i, i + 1, 1
        while hi < n and nodes[hi] <= v:
            lo = hi
            hi += step
            step <<= 1
        hi = min(hi, n)
    else:
        hi, lo, step = i, i - 1, 1
        while lo >= 0 and nodes[lo] > v:
            hi = lo
            lo -= step
            step <<= 1
        lo = max(lo, -1)
    # Invariant: nodes[lo] <= v (or lo == -1), nodes[hi] > v (or hi == n).
    return bisect_right(nodes, v, lo + 1, hi) - 1


def gallop_leftmost_ge(
    nodes: Sequence[DeweyTuple], v: DeweyTuple, hint: int = 0
) -> int:
    """Index of the leftmost element ``>= v``, or ``len(nodes)`` if none."""
    n = len(nodes)
    if n == 0:
        return 0
    i = min(max(hint, 0), n - 1)
    if nodes[i] >= v:
        hi, lo, step = i, i - 1, 1
        while lo >= 0 and nodes[lo] >= v:
            hi = lo
            lo -= step
            step <<= 1
        lo = max(lo, -1)
    else:
        lo, hi, step = i, i + 1, 1
        while hi < n and nodes[hi] < v:
            lo = hi
            hi += step
            step <<= 1
        hi = min(hi, n)
    # Invariant: nodes[lo] < v (or lo == -1), nodes[hi] >= v (or hi == n).
    return bisect_left(nodes, v, lo + 1, hi)


class MatchSource(Protocol):
    """One keyword list behind the paper's access primitives."""

    def lm(self, v: DeweyTuple) -> Optional[DeweyTuple]:
        """Left match: biggest id <= v, or None."""

    def rm(self, v: DeweyTuple) -> Optional[DeweyTuple]:
        """Right match: smallest id >= v, or None."""

    def scan(self) -> Iterator[DeweyTuple]:
        """All nodes in ascending id order."""

    def __len__(self) -> int:
        """Number of nodes in the list (the keyword's frequency)."""


class SortedListSource:
    """Binary-search matches over an in-memory sorted list (IL's accessor).

    Every ``lm``/``rm`` costs one ``O(log|S|)`` bisect, matching the paper's
    indexed-lookup cost model.
    """

    def __init__(self, nodes: Sequence[DeweyTuple], counters: Optional[OpCounters] = None):
        self._nodes: List[DeweyTuple] = list(nodes)
        if any(self._nodes[i] >= self._nodes[i + 1] for i in range(len(self._nodes) - 1)):
            raise ValueError("keyword list must be strictly sorted by Dewey id")
        self.counters = counters if counters is not None else OpCounters()

    def lm(self, v: DeweyTuple) -> Optional[DeweyTuple]:
        self.counters.lm_ops += 1
        i = bisect_right(self._nodes, v)
        return self._nodes[i - 1] if i > 0 else None

    def rm(self, v: DeweyTuple) -> Optional[DeweyTuple]:
        self.counters.rm_ops += 1
        i = bisect_left(self._nodes, v)
        return self._nodes[i] if i < len(self._nodes) else None

    def scan(self) -> Iterator[DeweyTuple]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)


class CursorListSource:
    """Forward-cursor matches over an in-memory sorted list (Scan Eager).

    Exploits the fact that IL's probes into each list arrive in
    (near-)ascending order: the cursor only moves forward, and each ``lm`` /
    ``rm`` is answered from the two elements around the cursor.  A probe
    *can* regress — to an ancestor of the previous probe, whose candidate
    Lemma 1 discards anyway — and returning a wrong match there would break
    SLCA semantics, so regressions fall back to a bounded binary search over
    the already-passed prefix without moving the cursor back
    (``cursor_reseeks`` counts how rare this is).
    """

    def __init__(self, nodes: Sequence[DeweyTuple], counters: Optional[OpCounters] = None):
        self._nodes: List[DeweyTuple] = list(nodes)
        if any(self._nodes[i] >= self._nodes[i + 1] for i in range(len(self._nodes) - 1)):
            raise ValueError("keyword list must be strictly sorted by Dewey id")
        self._cursor = 0
        self.counters = counters if counters is not None else OpCounters()

    def _regressed(self, v: DeweyTuple) -> bool:
        return self._cursor > 0 and self._nodes[self._cursor - 1] >= v

    def _advance_to(self, v: DeweyTuple) -> None:
        nodes, n = self._nodes, len(self._nodes)
        c = self._cursor
        while c < n and nodes[c] < v:
            c += 1
            self.counters.cursor_advances += 1
        self._cursor = c

    def lm(self, v: DeweyTuple) -> Optional[DeweyTuple]:
        self.counters.lm_ops += 1
        if self._regressed(v):
            self.counters.cursor_reseeks += 1
            i = bisect_right(self._nodes, v, 0, self._cursor)
            return self._nodes[i - 1] if i > 0 else None
        self._advance_to(v)
        c = self._cursor
        if c < len(self._nodes) and self._nodes[c] == v:
            return v
        return self._nodes[c - 1] if c > 0 else None

    def rm(self, v: DeweyTuple) -> Optional[DeweyTuple]:
        self.counters.rm_ops += 1
        if self._regressed(v):
            self.counters.cursor_reseeks += 1
            # The true right match is in the passed prefix because the
            # element just before the cursor is already >= v.
            i = bisect_left(self._nodes, v, 0, self._cursor)
            return self._nodes[i]
        self._advance_to(v)
        c = self._cursor
        return self._nodes[c] if c < len(self._nodes) else None

    def scan(self) -> Iterator[DeweyTuple]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)


class LazyCursorSource:
    """Cursor matches over a *streaming* sorted iterator.

    The disk Scan Eager source: Dewey numbers arrive from a sequential block
    read, and the cursor logic of :class:`CursorListSource` runs over the
    consumed prefix, which is retained in memory (Scan Eager reads whole
    lists anyway, and retaining the prefix is what makes the regression
    fallback possible without backward disk seeks).
    """

    def __init__(
        self,
        iterator: Iterator[DeweyTuple],
        length: int,
        counters: Optional[OpCounters] = None,
    ):
        self._iterator = iterator
        self._length = length
        self._consumed: List[DeweyTuple] = []
        self._exhausted = False
        self._cursor = 0
        self.counters = counters if counters is not None else OpCounters()

    def _pull(self) -> bool:
        """Consume one more element; False at end of stream."""
        if self._exhausted:
            return False
        nxt = next(self._iterator, None)
        if nxt is None:
            self._exhausted = True
            return False
        if self._consumed and nxt <= self._consumed[-1]:
            raise ValueError("scan stream is not strictly sorted")
        self._consumed.append(nxt)
        return True

    def _regressed(self, v: DeweyTuple) -> bool:
        return self._cursor > 0 and self._consumed[self._cursor - 1] >= v

    def _advance_to(self, v: DeweyTuple) -> None:
        c = self._cursor
        while True:
            while c < len(self._consumed) and self._consumed[c] < v:
                c += 1
                self.counters.cursor_advances += 1
            if c < len(self._consumed) or not self._pull():
                break
        self._cursor = c

    def lm(self, v: DeweyTuple) -> Optional[DeweyTuple]:
        self.counters.lm_ops += 1
        if self._regressed(v):
            self.counters.cursor_reseeks += 1
            i = bisect_right(self._consumed, v, 0, self._cursor)
            return self._consumed[i - 1] if i > 0 else None
        self._advance_to(v)
        c = self._cursor
        if c < len(self._consumed) and self._consumed[c] == v:
            return v
        return self._consumed[c - 1] if c > 0 else None

    def rm(self, v: DeweyTuple) -> Optional[DeweyTuple]:
        self.counters.rm_ops += 1
        if self._regressed(v):
            self.counters.cursor_reseeks += 1
            i = bisect_left(self._consumed, v, 0, self._cursor)
            return self._consumed[i]
        self._advance_to(v)
        c = self._cursor
        return self._consumed[c] if c < len(self._consumed) else None

    def scan(self) -> Iterator[DeweyTuple]:
        i = 0
        while True:
            while i < len(self._consumed):
                yield self._consumed[i]
                i += 1
            if not self._pull():
                return

    def __len__(self) -> int:
        return self._length


def memory_sources(
    keyword_lists: Sequence[Sequence[DeweyTuple]],
    counters: Optional[OpCounters] = None,
    cursor: bool = False,
) -> List[MatchSource]:
    """Wrap raw keyword lists as match sources sharing one counter set."""
    shared = counters if counters is not None else OpCounters()
    cls = CursorListSource if cursor else SortedListSource
    return [cls(nodes, shared) for nodes in keyword_lists]
