"""Operation counters for the Table 1 reproduction.

The paper analyzes three cost dimensions: main-memory operation counts,
number of ``lm``/``rm`` match operations, and disk accesses.  Physical I/O
is counted by the pager; this module counts the algorithm-level operations:

* ``lm_ops`` / ``rm_ops`` — match operations (IL performs ``O(k·|S1|)``,
  each costing a ``log`` lookup; Scan Eager performs the same number but
  implemented by cursor advances),
* ``cursor_advances`` — individual list steps taken by scan cursors
  (``O(Σ|Si|)`` total for Scan Eager),
* ``cursor_reseeks`` — the rare bounded binary searches a scan cursor falls
  back to when a probe regresses (see DESIGN.md §5.3),
* ``lca_ops`` — lowest-common-ancestor computations (each ``O(d)``),
* ``nodes_merged`` — nodes consumed by the Stack algorithm's sort-merge
  (``Σ|Si|``),
* ``candidates`` / ``results`` — SLCA candidates produced and survivors.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class OpCounters:
    """Mutable operation counters shared across one query execution."""

    lm_ops: int = 0
    rm_ops: int = 0
    cursor_advances: int = 0
    cursor_reseeks: int = 0
    lca_ops: int = 0
    nodes_merged: int = 0
    candidates: int = 0
    results: int = 0

    @property
    def match_ops(self) -> int:
        """Total match operations (lm + rm)."""
        return self.lm_ops + self.rm_ops

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> "OpCounters":
        return OpCounters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def add(self, other: "OpCounters") -> None:
        """Accumulate *other* into this instance in place."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def delta(self, before: "OpCounters") -> "OpCounters":
        """Counters accumulated since the *before* snapshot."""
        return OpCounters(
            **{f.name: getattr(self, f.name) - getattr(before, f.name) for f in fields(self)}
        )

    def __add__(self, other: "OpCounters") -> "OpCounters":
        return OpCounters(
            **{f.name: getattr(self, f.name) + getattr(other, f.name) for f in fields(self)}
        )
