"""The Scan Eager algorithm (Section 3.2).

"The Scan Eager algorithm is exactly the same as the Indexed Lookup Eager
algorithm except that its lm and rm implementations scan keyword lists to
find matches by maintaining a cursor for each keyword list."  We implement
it literally that way: the eager pipeline of
:mod:`repro.core.indexed_lookup` runs unchanged over
:class:`~repro.core.sources.CursorListSource` match sources.

When keyword frequencies are similar, the total cursor movement
(``O(Σ|Si|)`` with tiny constants) beats IL's ``O(k·|S1|·log|S|)`` lookup
cost — this is the regime where the paper recommends Scan Eager.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.core.counters import OpCounters
from repro.core.indexed_lookup import eager_slca
from repro.core.sources import CursorListSource, MatchSource
from repro.xmltree.dewey import DeweyTuple


def scan_eager(
    sources: Sequence[MatchSource],
    counters: Optional[OpCounters] = None,
) -> Iterator[DeweyTuple]:
    """Scan Eager over prepared (cursor-based) match sources.

    The caller chooses the source kind; passing indexed sources here would
    silently run IL instead, so prefer :func:`scan_eager_slca` unless you
    are wiring disk sources yourself.
    """
    return eager_slca(sources, counters)


def scan_eager_slca(
    keyword_lists: Sequence[Sequence[DeweyTuple]],
    counters: Optional[OpCounters] = None,
) -> List[DeweyTuple]:
    """Run Scan Eager over in-memory keyword lists (smallest list first)."""
    counters = counters if counters is not None else OpCounters()
    ordered = sorted(keyword_lists, key=len)
    sources = [
        SortedCursorHead(ordered[0], counters),
        *(CursorListSource(lst, counters) for lst in ordered[1:]),
    ]
    return list(eager_slca(sources, counters))


class SortedCursorHead(CursorListSource):
    """``S1`` under Scan Eager: it is only ever scanned, never matched.

    A plain cursor source works, but this subclass documents (and asserts in
    tests) that the head list receives no ``lm``/``rm`` probes — the eager
    pipeline drives it purely through :meth:`scan`.
    """
