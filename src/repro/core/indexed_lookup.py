"""The Indexed Lookup Eager algorithm (the paper's core contribution).

For every node ``v`` of the smallest keyword list ``S1``, the *candidate*
``slca({v}, S2, …, Sk)`` is computed with two match lookups per remaining
list (Property 1, applied recursively per Property 2):

    x ← v
    for each further list S:
        x ← deeper( lca(x, lm(x, S)),  lca(x, rm(x, S)) )

The candidate is the root of the smallest subtree containing ``v`` plus at
least one node of every other list.  Candidates for ascending ``v`` are then
filtered on the fly:

* **Lemma 1** — a candidate that does not advance in document order is an
  ancestor-or-self of the currently held candidate: discard it.
* **Lemma 2** — when a candidate advances past the held candidate without
  being its descendant, the held candidate can never be an ancestor of any
  later candidate: it is confirmed as an SLCA and emitted immediately.

The generator therefore *pipelines* SLCAs (the paper's "eagerness"): the
first answers appear long before ``S1`` is exhausted, with only O(1) state.

Main-memory complexity ``O(k·d·|S1|·log|S|)`` where ``d`` is the maximum
depth and ``|S|`` the largest list; the same control flow over cursor-based
sources is the Scan Eager algorithm (:mod:`repro.core.scan_eager`).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.core.counters import OpCounters
from repro.core.sources import MatchSource, SortedListSource
from repro.robustness.deadline import checkpoint
from repro.xmltree.dewey import DeweyTuple, lca


def slca_candidate(
    v: DeweyTuple,
    others: Sequence[MatchSource],
    counters: OpCounters,
) -> DeweyTuple:
    """``slca({v}, S2, …, Sk)`` — the smallest subtree root covering *v*
    and one node from each source (Properties 1 and 2).

    Every source must be non-empty (the caller short-circuits otherwise).
    """
    x = v
    for source in others:
        left = source.lm(x)
        right = source.rm(x)
        # lca(x, match) is a prefix of x, so the two LCAs are comparable
        # and `deeper` = the longer prefix; inline for the hot path.
        best: Optional[DeweyTuple] = None
        if left is not None:
            best = lca(x, left)
            counters.lca_ops += 1
        if right is not None:
            candidate = lca(x, right)
            counters.lca_ops += 1
            if best is None or len(candidate) > len(best):
                best = candidate
        x = best
    return x


def eager_slca(
    sources: Sequence[MatchSource],
    counters: Optional[OpCounters] = None,
) -> Iterator[DeweyTuple]:
    """Shared eager SLCA pipeline over any kind of match source.

    ``sources[0]`` plays the role of ``S1``; the query engine passes the
    smallest list first (the algorithm is correct for any order, only the
    cost changes).  Yields SLCAs in document order, as soon as confirmed.
    """
    counters = counters if counters is not None else OpCounters()
    if not sources:
        raise ValueError("at least one keyword list is required")
    if any(len(source) == 0 for source in sources):
        return
    others = sources[1:]
    held: Optional[DeweyTuple] = None
    for v in sources[0].scan():
        checkpoint("execute")
        x = slca_candidate(v, others, counters)
        counters.candidates += 1
        if held is None:
            held = x
            continue
        if x > held:
            if held != x[: len(held)]:  # Lemma 2: held is not an ancestor of x
                counters.results += 1
                yield held
            held = x
        # else x <= held: Lemma 1 — x is an ancestor-or-self of held; drop x.
    if held is not None:
        counters.results += 1
        yield held


def indexed_lookup_eager(
    sources: Sequence[MatchSource],
    counters: Optional[OpCounters] = None,
) -> Iterator[DeweyTuple]:
    """Indexed Lookup Eager over prepared match sources (Algorithm IL)."""
    return eager_slca(sources, counters)


def indexed_lookup_slca(
    keyword_lists: Sequence[Sequence[DeweyTuple]],
    counters: Optional[OpCounters] = None,
) -> List[DeweyTuple]:
    """Convenience wrapper: run IL over in-memory keyword lists.

    Orders the lists by size (smallest first) as the paper prescribes, then
    materializes the full answer.
    """
    counters = counters if counters is not None else OpCounters()
    ordered = sorted(keyword_lists, key=len)
    sources = [SortedListSource(lst, counters) for lst in ordered]
    return list(eager_slca(sources, counters))


def indexed_lookup_blocked(
    sources: Sequence[MatchSource],
    block_size: int,
    counters: Optional[OpCounters] = None,
) -> Iterator[List[DeweyTuple]]:
    """The paper's memory-bounded variant: process ``S1`` in blocks of *b*.

    Computes ``slca(B1, S2, …, Sk)``, then ``slca({last result} ∪ B2, …)``
    and so on; every block's confirmed SLCAs are emitted together while the
    block's final candidate is carried into the next block.  Semantically
    identical to :func:`indexed_lookup_eager` (the generator already holds
    only the current candidate); this variant exists to measure
    time-to-first-answer as a function of *b* in the buffering ablation.
    """
    if block_size < 1:
        raise ValueError("block size must be positive")
    counters = counters if counters is not None else OpCounters()
    if any(len(source) == 0 for source in sources):
        return
    others = sources[1:]
    held: Optional[DeweyTuple] = None
    block: List[DeweyTuple] = []
    seen_any = False
    for v in sources[0].scan():
        checkpoint("execute")
        seen_any = True
        x = slca_candidate(v, others, counters)
        counters.candidates += 1
        if held is not None:
            if x > held:
                if held != x[: len(held)]:
                    counters.results += 1
                    block.append(held)
                held = x
        else:
            held = x
        if len(block) >= block_size:
            yield block
            block = []
    if seen_any and held is not None:
        counters.results += 1
        block.append(held)
    if block:
        yield block
