"""Experiment corpora: planted keyword lists over a virtual DBLP shape.

The paper's experiments run forty random queries per point against an 83 MB
grouped DBLP document, choosing keywords by their *frequency* (list size):
the sweeps of Figures 8–13 are entirely parameterized by ``|Si|``.  We
reproduce that control exactly by *planting*: each experiment keyword
``xk<freq>_<i>`` is assigned ``freq`` distinct, uniformly random text slots
of a DBLP-shaped document.

For the large scales (lists of 100 000 postings) materializing the tree is
pointless — the algorithms consume keyword lists, and the index builder
accepts lists directly — so :class:`CorpusShape` maps slot numbers to the
Dewey numbers a grouped DBLP document would produce
(``dblp / venue / year / paper / title / text``, depth 6) without ever
building nodes.  The smaller correctness tests use the materialized
generator in :mod:`repro.xmltree.generate` instead; both yield the same
Dewey geometry.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.xmltree.dewey import DeweyTuple
from repro.xmltree.level_table import LevelTable


@dataclass(frozen=True)
class CorpusShape:
    """Geometry of the virtual grouped-DBLP document.

    ``venues × years × papers`` text slots; slot *s* lives at Dewey number
    ``(0, v, 1 + y, 1 + p, 0, 0)`` — venue child *v* of the root, year child
    ``1 + y`` of the venue (child 0 is the venue name), paper child
    ``1 + p`` of the year (child 0 is the year text), the paper's title
    field, the title's text node.
    """

    venues: int = 20
    years: int = 10
    papers: int = 1000

    @property
    def slots(self) -> int:
        return self.venues * self.years * self.papers

    def slot_dewey(self, slot: int) -> DeweyTuple:
        """Dewey number of text slot *slot* (0-based, document order)."""
        if not 0 <= slot < self.slots:
            raise ValueError(f"slot {slot} out of range [0, {self.slots})")
        venue, rest = divmod(slot, self.years * self.papers)
        year, paper = divmod(rest, self.papers)
        return (0, venue, 1 + year, 1 + paper, 0, 0)

    def level_table(self) -> LevelTable:
        """The level table a document of this shape would produce."""
        # Fanouts per level: root→venues, venue→(name + years),
        # year→(text + papers), paper→fields, field→text.
        return LevelTable([self.venues, 1 + self.years, 1 + self.papers, 4, 1])

    @classmethod
    def sized_for(cls, max_frequency: int, headroom: float = 2.0) -> "CorpusShape":
        """A shape with at least ``headroom × max_frequency`` slots."""
        needed = max(1, math.ceil(max_frequency * headroom))
        venues, years = 20, 10
        papers = max(1, math.ceil(needed / (venues * years)))
        return cls(venues=venues, years=years, papers=papers)


def keyword_name(frequency: int, variant: int = 0) -> str:
    """Canonical name of a planted keyword: ``xk<frequency>_<variant>``."""
    return f"xk{frequency}_{variant}"


def plant_virtual_lists(
    frequencies: Mapping[str, int],
    seed: int = 0,
    shape: CorpusShape = None,
) -> Tuple[Dict[str, List[DeweyTuple]], CorpusShape]:
    """Planted keyword lists at exact frequencies over a virtual corpus.

    Each keyword independently samples ``frequency`` distinct slots, so the
    resulting list has exactly that many entries (one posting per node) and
    different keywords co-occur at slots by chance — the same collision
    statistics random DBLP keywords of those frequencies would have.
    """
    if shape is None:
        shape = CorpusShape.sized_for(max(frequencies.values(), default=1))
    largest = max(frequencies.values(), default=0)
    if largest > shape.slots:
        raise ValueError(
            f"largest frequency {largest} exceeds the corpus's {shape.slots} slots"
        )
    rng = random.Random(seed)
    lists: Dict[str, List[DeweyTuple]] = {}
    for keyword in sorted(frequencies):
        count = frequencies[keyword]
        slots = rng.sample(range(shape.slots), count)
        slots.sort()
        lists[keyword] = [shape.slot_dewey(s) for s in slots]
    return lists, shape


@dataclass
class PlantedCorpus:
    """Planted lists plus the geometry they came from — one experiment's
    data, ready for either in-memory execution or index building."""

    lists: Dict[str, List[DeweyTuple]]
    shape: CorpusShape
    seed: int

    @classmethod
    def for_frequencies(
        cls,
        needed: Iterable[Tuple[int, int]],
        seed: int = 0,
        shape: CorpusShape = None,
    ) -> "PlantedCorpus":
        """Corpus containing ``variants`` keywords at each frequency.

        ``needed`` is an iterable of ``(frequency, variants)`` pairs; the
        planted keywords are named by :func:`keyword_name`.
        """
        spec: Dict[str, int] = {}
        for frequency, variants in needed:
            for variant in range(variants):
                spec[keyword_name(frequency, variant)] = frequency
        lists, shape = plant_virtual_lists(spec, seed=seed, shape=shape)
        return cls(lists=lists, shape=shape, seed=seed)

    def keyword(self, frequency: int, variant: int = 0) -> str:
        name = keyword_name(frequency, variant)
        if name not in self.lists:
            raise KeyError(f"corpus has no planted keyword {name}")
        return name

    @property
    def total_postings(self) -> int:
        return sum(len(lst) for lst in self.lists.values())

    def level_table(self) -> LevelTable:
        return self.shape.level_table()
