"""Experiment workloads: planted corpora, per-figure query sets, the
runner and plain-text reporting."""

from repro.workloads.datasets import (
    CorpusShape,
    PlantedCorpus,
    keyword_name,
    plant_virtual_lists,
)
from repro.workloads.queries import (
    FREQUENCY_LADDER,
    KEYWORD_COUNTS,
    QueryPoint,
    fig8_points,
    fig9_points,
    fig10_points,
    needed_frequencies,
)
from repro.workloads.report import format_table, io_table, ops_table, sweep_csv, sweep_table
from repro.workloads.runner import (
    ExperimentRunner,
    Measurement,
    average_measurements,
)

__all__ = [
    "CorpusShape",
    "ExperimentRunner",
    "FREQUENCY_LADDER",
    "KEYWORD_COUNTS",
    "Measurement",
    "PlantedCorpus",
    "QueryPoint",
    "average_measurements",
    "fig10_points",
    "fig8_points",
    "fig9_points",
    "format_table",
    "io_table",
    "keyword_name",
    "needed_frequencies",
    "ops_table",
    "sweep_csv",
    "plant_virtual_lists",
    "sweep_table",
]
