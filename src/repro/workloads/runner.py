"""Experiment runner: execute query points and collect measurements.

A :class:`Measurement` captures everything one query execution cost — wall
time, operation counters, physical page reads split into sequential and
random, and the modeled I/O time the cost model charges for them.  The
:class:`ExperimentRunner` owns one planted corpus plus (lazily) a disk
index over it, and runs queries in three modes:

* ``memory`` — in-memory keyword lists; pure CPU, the main-memory cost
  model of Section 3 (used for the hot-cache figures and Table 1);
* ``disk-hot`` — disk index, buffer pool pre-warmed by an unmeasured run of
  the same query (the paper's hot-cache protocol: response time of repeated
  queries);
* ``disk-cold`` — disk index, buffer pool emptied before the measured run;
  reported time = CPU + modeled I/O (page misses × seek/stream cost).
"""

from __future__ import annotations

import os
import statistics
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.counters import OpCounters
from repro.index.builder import build_index
from repro.index.inverted import DiskKeywordIndex
from repro.index.memory import MemoryKeywordIndex
from repro.storage.pager import CostModel, DEFAULT_PAGE_SIZE
from repro.workloads.datasets import PlantedCorpus
from repro.workloads.queries import QueryPoint
from repro.xksearch.engine import ExecutionStats, QueryEngine

MODES = ("memory", "disk-hot", "disk-cold")


@dataclass
class Measurement:
    """Cost profile of one (or the average of several) query execution."""

    algorithm: str
    mode: str
    wall_ms: float
    modeled_io_ms: float = 0.0
    page_reads: int = 0
    sequential_reads: int = 0
    random_reads: int = 0
    n_results: int = 0
    counters: OpCounters = field(default_factory=OpCounters)

    @property
    def total_ms(self) -> float:
        """Wall time plus modeled I/O — the headline response time."""
        return self.wall_ms + self.modeled_io_ms


def average_measurements(measurements: Sequence[Measurement]) -> Measurement:
    """Mean of several runs of the same configuration."""
    if not measurements:
        raise ValueError("cannot average zero measurements")
    first = measurements[0]
    counters = OpCounters()
    for m in measurements:
        counters = counters + m.counters
    n = len(measurements)
    summed = counters.as_dict()
    averaged = OpCounters(**{k: v // n for k, v in summed.items()})
    return Measurement(
        algorithm=first.algorithm,
        mode=first.mode,
        wall_ms=statistics.fmean(m.wall_ms for m in measurements),
        modeled_io_ms=statistics.fmean(m.modeled_io_ms for m in measurements),
        page_reads=round(statistics.fmean(m.page_reads for m in measurements)),
        sequential_reads=round(statistics.fmean(m.sequential_reads for m in measurements)),
        random_reads=round(statistics.fmean(m.random_reads for m in measurements)),
        n_results=round(statistics.fmean(m.n_results for m in measurements)),
        counters=averaged,
    )


class ExperimentRunner:
    """Runs query points against one planted corpus."""

    def __init__(
        self,
        corpus: PlantedCorpus,
        page_size: int = DEFAULT_PAGE_SIZE,
        cost_model: Optional[CostModel] = None,
        index_dir: Optional[str] = None,
        pool_capacity: int = 16384,
    ):
        self.corpus = corpus
        self.page_size = page_size
        self.cost_model = cost_model or CostModel()
        self.pool_capacity = pool_capacity
        self._memory_index = MemoryKeywordIndex(corpus.lists)
        self._memory_engine = QueryEngine(self._memory_index)
        self._index_dir = index_dir
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None
        self._disk_index: Optional[DiskKeywordIndex] = None
        self._disk_engine: Optional[QueryEngine] = None

    # -- disk index lifecycle ---------------------------------------------------

    def _ensure_disk(self) -> QueryEngine:
        if self._disk_engine is not None:
            return self._disk_engine
        if self._index_dir is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="xksearch-bench-")
            self._index_dir = self._tempdir.name
        manifest_path = os.path.join(self._index_dir, "manifest.json")
        if not os.path.exists(manifest_path):
            build_index(
                self.corpus.lists,
                self._index_dir,
                page_size=self.page_size,
                level_table=self.corpus.level_table(),
            )
        # The experiment harness reproduces the paper's disk-access
        # figures, which model B+tree descents and leaf scans — so the
        # segment fast path (which never touches the pager) is disabled
        # here; the serving layer is where segments run.
        self._disk_index = DiskKeywordIndex(
            self._index_dir, pool_capacity=self.pool_capacity, use_segments=False
        )
        self._disk_engine = QueryEngine(self._disk_index)
        return self._disk_engine

    def close(self) -> None:
        if self._disk_index is not None:
            self._disk_index.close()
            self._disk_index = None
            self._disk_engine = None
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- single-query execution ----------------------------------------------------

    def run_query(
        self,
        keywords: Sequence[str],
        algorithm: str,
        mode: str = "memory",
    ) -> Measurement:
        """Execute one query in the given mode and measure it."""
        if mode == "memory":
            return self._run_memory(keywords, algorithm)
        if mode in ("disk-hot", "disk-cold"):
            return self._run_disk(keywords, algorithm, cold=(mode == "disk-cold"))
        raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")

    def _run_memory(self, keywords: Sequence[str], algorithm: str) -> Measurement:
        stats = ExecutionStats()
        started = time.perf_counter()
        results = list(self._memory_engine.execute(keywords, algorithm, stats))
        wall_ms = (time.perf_counter() - started) * 1000
        return Measurement(
            algorithm=algorithm,
            mode="memory",
            wall_ms=wall_ms,
            n_results=len(results),
            counters=stats.counters,
        )

    def _run_disk(
        self, keywords: Sequence[str], algorithm: str, cold: bool
    ) -> Measurement:
        engine = self._ensure_disk()
        index = self._disk_index
        if cold:
            index.make_cold()
        else:
            # Hot protocol: one unmeasured pass loads every page the query
            # touches into the pool.
            list(engine.execute(keywords, algorithm, ExecutionStats()))
        before = index.io_snapshot()
        stats = ExecutionStats()
        started = time.perf_counter()
        results = list(engine.execute(keywords, algorithm, stats))
        wall_ms = (time.perf_counter() - started) * 1000
        delta = index.pager.stats.delta(before)
        return Measurement(
            algorithm=algorithm,
            mode="disk-cold" if cold else "disk-hot",
            wall_ms=wall_ms,
            modeled_io_ms=self.cost_model.charge(delta),
            page_reads=delta.reads,
            sequential_reads=delta.sequential_reads,
            random_reads=delta.random_reads,
            n_results=len(results),
            counters=stats.counters,
        )

    # -- point execution ---------------------------------------------------------------

    def run_point(
        self,
        point: QueryPoint,
        algorithm: str,
        mode: str = "memory",
        repeats: int = 1,
    ) -> Measurement:
        """Average measurement over the point's query variants × repeats."""
        runs: List[Measurement] = []
        for query in point.queries:
            for _ in range(max(1, repeats)):
                runs.append(self.run_query(query, algorithm, mode))
        return average_measurements(runs)

    def run_points(
        self,
        points: Sequence[QueryPoint],
        algorithms: Sequence[str],
        mode: str = "memory",
        repeats: int = 1,
    ) -> Dict[int, Dict[str, Measurement]]:
        """Full sweep: {x value: {algorithm: averaged measurement}}."""
        sweep: Dict[int, Dict[str, Measurement]] = {}
        for point in points:
            sweep[point.x] = {
                algorithm: self.run_point(point, algorithm, mode, repeats)
                for algorithm in algorithms
            }
        return sweep
