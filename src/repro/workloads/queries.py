"""Query-set generators, one per experiment figure.

Each generator returns :class:`QueryPoint` objects: the x-axis value of the
figure plus the concrete keyword queries (lists of planted-keyword names)
to run at that point.  ``variants`` emulates the paper's "forty randomly
chosen queries per experiment": with ``variants = v``, each point runs the
query over ``v`` independent plantings of every frequency and the harness
averages the measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Set, Tuple

from repro.workloads.datasets import keyword_name

#: Frequency ladder used throughout the paper's figures.
FREQUENCY_LADDER = (10, 100, 1000, 10000, 100000)

#: Keyword-count sweep of Figures 9/10/12/13.
KEYWORD_COUNTS = (2, 3, 4, 5)


@dataclass(frozen=True)
class QueryPoint:
    """One x-axis point of a figure panel."""

    x: int                      # the swept value (frequency or #keywords)
    queries: Tuple[Tuple[str, ...], ...]  # keyword tuples to run and average

    def frequencies_used(self) -> Set[Tuple[int, int]]:
        """(frequency, variants) pairs this point needs planted."""
        needed: Set[Tuple[int, int]] = set()
        for query in self.queries:
            for name in query:
                # keyword_name format: xk<freq>_<variant>
                freq_part, variant_part = name[2:].split("_")
                needed.add((int(freq_part), int(variant_part) + 1))
        return needed


def _merge_needed(points: Iterable[QueryPoint]) -> List[Tuple[int, int]]:
    """Collapse per-point needs into max-variant per frequency."""
    best = {}
    for point in points:
        for frequency, variants in point.frequencies_used():
            best[frequency] = max(best.get(frequency, 0), variants)
    return sorted(best.items())


def fig8_points(
    small_frequency: int,
    large_frequencies: Iterable[int] = FREQUENCY_LADDER,
    variants: int = 2,
) -> List[QueryPoint]:
    """Figure 8/11: two keywords; small list fixed, large list swept."""
    points = []
    for large in large_frequencies:
        queries = []
        for v in range(variants):
            small_kw = keyword_name(small_frequency, v)
            # Use a different variant stream for the large keyword so the
            # two lists are independent plantings even at equal frequency.
            large_kw = keyword_name(large, v if large != small_frequency else v + variants)
            queries.append((small_kw, large_kw))
        points.append(QueryPoint(x=large, queries=tuple(queries)))
    return points


def fig9_points(
    small_frequency: int,
    large_frequency: int = 100000,
    keyword_counts: Iterable[int] = KEYWORD_COUNTS,
    variants: int = 2,
) -> List[QueryPoint]:
    """Figure 9/12: one small list plus (k-1) large lists; k swept."""
    points = []
    for k in keyword_counts:
        queries = []
        for v in range(variants):
            query = [keyword_name(small_frequency, v)]
            for j in range(k - 1):
                query.append(keyword_name(large_frequency, v * (max(keyword_counts) - 1) + j))
            queries.append(tuple(query))
        points.append(QueryPoint(x=k, queries=tuple(queries)))
    return points


def fig10_points(
    frequency: int,
    keyword_counts: Iterable[int] = KEYWORD_COUNTS,
    variants: int = 2,
) -> List[QueryPoint]:
    """Figure 10/13: k keyword lists, all of the same size; k swept."""
    points = []
    for k in keyword_counts:
        queries = []
        for v in range(variants):
            base = v * max(keyword_counts)
            queries.append(tuple(keyword_name(frequency, base + j) for j in range(k)))
        points.append(QueryPoint(x=k, queries=tuple(queries)))
    return points


def needed_frequencies(points: Iterable[QueryPoint]) -> List[Tuple[int, int]]:
    """All (frequency, variants) plantings a set of points requires."""
    return _merge_needed(points)
