"""Reporting: render experiment sweeps as the paper's tables and series.

Every figure harness prints one table per panel: the x-axis values as rows,
the algorithms as columns, plus a ``stack/il`` ratio column that makes the
paper's "orders of magnitude" claim directly visible.  All output is plain
aligned text so ``bench_output.txt`` reads like the paper's figure data.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.workloads.runner import Measurement

ALGORITHM_LABELS = {"il": "IL", "scan": "Scan", "stack": "Stack"}


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
) -> str:
    """Aligned plain-text table with a title line."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title]
    lines.append("  ".join(h.rjust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt_ms(value: float) -> str:
    if value >= 100:
        return f"{value:.0f}"
    if value >= 1:
        return f"{value:.2f}"
    return f"{value:.3f}"


def sweep_table(
    title: str,
    x_label: str,
    sweep: Dict[int, Dict[str, Measurement]],
    algorithms: Sequence[str] = ("il", "scan", "stack"),
    value: Optional[Callable[[Measurement], float]] = None,
    value_label: str = "ms",
    ratio: bool = True,
) -> str:
    """One figure panel as a table: x → per-algorithm values."""
    value = value or (lambda m: m.total_ms)
    headers = [x_label] + [
        f"{ALGORITHM_LABELS.get(a, a)} ({value_label})" for a in algorithms
    ]
    if ratio and "il" in algorithms and "stack" in algorithms:
        headers.append("stack/il")
    rows: List[List[str]] = []
    for x in sorted(sweep):
        cells = [str(x)]
        by_alg = sweep[x]
        for algorithm in algorithms:
            cells.append(_fmt_ms(value(by_alg[algorithm])))
        if ratio and "il" in algorithms and "stack" in algorithms:
            il_value = value(by_alg["il"])
            stack_value = value(by_alg["stack"])
            cells.append(f"{stack_value / il_value:.1f}x" if il_value > 0 else "inf")
        rows.append(cells)
    return format_table(title, headers, rows)


def sweep_csv(
    x_label: str,
    sweep: Dict[int, Dict[str, Measurement]],
    algorithms: Sequence[str] = ("il", "scan", "stack"),
) -> str:
    """One figure panel as CSV: full measurement detail per algorithm.

    Columns per algorithm: total/wall/modeled-I/O milliseconds, page reads
    (random/sequential split), match operations and results — everything a
    plotting script needs to redraw the paper's figure.
    """
    fields = (
        ("total_ms", lambda m: f"{m.total_ms:.4f}"),
        ("wall_ms", lambda m: f"{m.wall_ms:.4f}"),
        ("io_ms", lambda m: f"{m.modeled_io_ms:.4f}"),
        ("reads", lambda m: str(m.page_reads)),
        ("rand", lambda m: str(m.random_reads)),
        ("seq", lambda m: str(m.sequential_reads)),
        ("match_ops", lambda m: str(m.counters.match_ops)),
        ("results", lambda m: str(m.n_results)),
    )
    header = [x_label.replace(" ", "_")]
    for algorithm in algorithms:
        header.extend(f"{algorithm}_{name}" for name, _ in fields)
    lines = [",".join(header)]
    for x in sorted(sweep):
        row = [str(x)]
        for algorithm in algorithms:
            m = sweep[x][algorithm]
            row.extend(fmt(m) for _, fmt in fields)
        lines.append(",".join(row))
    return "\n".join(lines) + "\n"


def io_table(
    title: str,
    x_label: str,
    sweep: Dict[int, Dict[str, Measurement]],
    algorithms: Sequence[str] = ("il", "scan", "stack"),
) -> str:
    """Page-access breakdown per algorithm (cold-cache evidence)."""
    headers = [x_label]
    for algorithm in algorithms:
        label = ALGORITHM_LABELS.get(algorithm, algorithm)
        headers.extend([f"{label} reads", f"{label} rand", f"{label} seq"])
    rows: List[List[str]] = []
    for x in sorted(sweep):
        cells = [str(x)]
        for algorithm in algorithms:
            m = sweep[x][algorithm]
            cells.extend(
                [str(m.page_reads), str(m.random_reads), str(m.sequential_reads)]
            )
        rows.append(cells)
    return format_table(title, headers, rows)


def band_attribution_table(
    registry=None,
    title: str = "Latency attribution by smallest-list frequency band",
) -> str:
    """Per-{band, algorithm} latency summary from ``xks_query_exec_ms``.

    The paper sweeps the smallest keyword list in decades (Figures 8-13);
    the engine labels its execution histogram the same way, so this table
    reads the live registry and answers "are we slow, or are the queries
    just big?" without re-running a sweep.
    """
    from repro.obs.metrics import get_registry
    from repro.xksearch.engine import FREQUENCY_BANDS

    headers = ["band", "algorithm", "queries", "mean ms", "p50 ms", "p99 ms"]
    registry = registry if registry is not None else get_registry()
    metric = registry.get_metric("xks_query_exec_ms")
    items = getattr(metric, "items", None) if metric is not None else None
    if not callable(items):
        return format_table(title, headers, [])
    band_order = {band: i for i, band in enumerate(FREQUENCY_BANDS)}
    rows: List[List[str]] = []
    entries = sorted(
        items(),
        key=lambda kv: (
            band_order.get(kv[0].get("band", ""), len(band_order)),
            kv[0].get("algorithm", ""),
        ),
    )
    for labels, child in entries:
        count = child.count
        if not count:
            continue
        rows.append(
            [
                labels.get("band", "?"),
                labels.get("algorithm", "?"),
                str(count),
                _fmt_ms(child.sum / count),
                _fmt_ms(child.percentile(0.50)),
                _fmt_ms(child.percentile(0.99)),
            ]
        )
    return format_table(title, headers, rows)


def slo_burn_table(
    slo_engine,
    title: str = "SLO error budgets and burn rates",
) -> str:
    """Per-SLO budget/burn summary from a live :class:`~repro.obs.slo.
    SLOEngine` — the report-side companion of ``GET /alertz``.

    One row per SLO: cumulative error budget remaining, the burn rate
    over each alerting window, and the worst alert state.  Sits next to
    :func:`band_attribution_table` so a workload report answers both
    "which band is slow?" and "is that slowness eating the budget?".
    """
    headers = [
        "slo", "objective", "events", "error rate",
        "budget left", "burn rates", "alerts",
    ]
    if slo_engine is None:
        return format_table(title, headers, [])
    status = slo_engine.status(evaluate=True)
    rows: List[List[str]] = []
    for block in status["slos"]:
        burn = " ".join(
            f"{window}={rate:g}x"
            for window, rate in block.get("burn_rates", {}).items()
        )
        alerts = " ".join(
            f"{alert['severity']}:{alert['state']}"
            for alert in block.get("alerts", [])
        )
        rows.append(
            [
                block["name"],
                f"{block['objective'] * 100:g}%",
                f"{block['total']:.0f}",
                f"{block['error_rate']:.6f}",
                f"{block['error_budget_remaining']:.4f}",
                burn or "-",
                alerts or "-",
            ]
        )
    return format_table(title, headers, rows)


def ops_table(
    title: str,
    x_label: str,
    sweep: Dict[int, Dict[str, Measurement]],
    algorithms: Sequence[str] = ("il", "scan", "stack"),
) -> str:
    """Operation-count breakdown (the Table 1 evidence)."""
    headers = [x_label]
    for algorithm in algorithms:
        label = ALGORITHM_LABELS.get(algorithm, algorithm)
        headers.extend([f"{label} match", f"{label} adv", f"{label} merged"])
    rows: List[List[str]] = []
    for x in sorted(sweep):
        cells = [str(x)]
        for algorithm in algorithms:
            c = sweep[x][algorithm].counters
            cells.extend(
                [str(c.match_ops), str(c.cursor_advances), str(c.nodes_merged)]
            )
        rows.append(cells)
    return format_table(title, headers, rows)
