"""Thread-safe metrics registry with Prometheus text exposition.

Three metric kinds, mirroring the Prometheus data model:

* :class:`Counter` — monotonically increasing totals (queries served,
  match operations, page reads);
* :class:`Gauge` — point-in-time values, either set directly or computed
  by a callback at collection time (cache entry counts, hit rates);
* :class:`Histogram` — log-bucketed distributions (latencies).  Buckets
  are geometric (:func:`exponential_buckets`), so relative error is
  bounded by the bucket factor at any scale; :meth:`Histogram.percentile`
  interpolates within a bucket for /statz-style summaries.

All metrics live in a :class:`MetricsRegistry`; the process-global default
is :func:`get_registry`.  Families may carry labels
(``registry.counter("xks_queries_total", labelnames=("algorithm",))``);
``family.labels(algorithm="il").inc()`` resolves the child once and the
hot path afterwards is one lock acquisition plus one addition.

Hot-path cost control: :func:`set_instrumentation_enabled` gates every
``Counter.inc``/``Histogram.observe`` behind a module-level flag, which is
how ``benchmarks/bench_qps.py`` measures the instrumentation overhead
(counters on vs. off) recorded in ``BENCH_qps.json``.

Components that already keep their own counters (buffer pool, pager,
query cache) are exposed without double-counting via *collectors*:
callables registered with :meth:`MetricsRegistry.register_collector` that
yield :class:`Sample` objects at scrape time.
"""

from __future__ import annotations

import math
import re
import threading
import time
from bisect import bisect_left
from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")

# Module-level instrumentation switch (see module docstring).  Read without
# a lock on every update — a plain attribute load, the cheapest gate Python
# offers; writes are rare (benchmarks, tests).
_enabled = True

#: Update-event tap (cross-process telemetry return-path).  When a capture
#: is active every ``Counter.inc`` / ``Histogram.observe`` on a registry-
#: stamped metric appends a self-describing event tuple here; a pool worker
#: wraps each task in ``start_capture()``/``stop_capture()`` and ships the
#: events back with the result so the parent can replay them into its own
#: registry (:meth:`MetricsRegistry.replay_events`).  ``None`` (the steady
#: state) keeps the hot path at a single global load + identity check.
_tap: Optional[List[tuple]] = None


def start_capture() -> None:
    """Begin capturing metric update events in this process.

    Intended for single-task worker processes (one capture at a time); a
    second ``start_capture`` simply restarts the buffer.
    """
    global _tap
    _tap = []


def stop_capture() -> List[tuple]:
    """Stop capturing and return the events recorded since
    :func:`start_capture` (empty when no capture was active)."""
    global _tap
    events = _tap if _tap is not None else []
    _tap = None
    return events


def set_instrumentation_enabled(flag: bool) -> None:
    """Globally enable/disable counter and histogram updates."""
    global _enabled
    _enabled = bool(flag)


def instrumentation_enabled() -> bool:
    return _enabled


def exponential_buckets(start: float, factor: float, count: int) -> Tuple[float, ...]:
    """``count`` geometric bucket upper bounds: start, start*factor, …"""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    return tuple(start * factor ** i for i in range(count))


#: Default latency buckets (milliseconds): 0.05 ms … ~26 s, factor 2.
DEFAULT_LATENCY_BUCKETS_MS = exponential_buckets(0.05, 2.0, 20)


class Sample:
    """One exposition sample, as produced by collectors.

    ``kind`` is the Prometheus type advertised for the metric (``counter``
    or ``gauge``); collectors mirroring a component's monotonically
    increasing stats should say ``counter``.
    """

    __slots__ = ("name", "value", "labels", "kind", "help")

    def __init__(
        self,
        name: str,
        value: float,
        labels: Optional[Dict[str, str]] = None,
        kind: str = "gauge",
        help: str = "",
    ):
        self.name = name
        self.value = value
        self.labels = labels or {}
        self.kind = kind
        self.help = help


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def _format_exemplar(exemplar: Tuple[str, float, float]) -> str:
    """OpenMetrics exemplar suffix: ``# {trace_id="…"} value timestamp``."""
    trace_id, value, ts = exemplar
    return (
        f' # {{trace_id="{_escape_label_value(str(trace_id))}"}} '
        f"{_format_value(value)} {ts:.3f}"
    )


class Counter:
    """Monotonically increasing value (one lock, one addition per update)."""

    __slots__ = ("_lock", "_value", "_ident")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0
        self._ident = None  # (name, labelnames, labelvalues, help) once registered

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        if not _enabled:
            return
        with self._lock:
            self._value += amount
        tap = _tap
        if tap is not None and self._ident is not None:
            name, labelnames, labelvalues, help = self._ident
            tap.append(("c", name, labelnames, labelvalues, help, amount))

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _samples(self, name: str) -> Iterable[Tuple[str, Dict[str, str], float]]:
        yield name, {}, self.value


class Gauge:
    """Point-in-time value: set directly, or computed by a callback."""

    __slots__ = ("_lock", "_value", "_callback", "_ident")

    def __init__(self, callback: Optional[Callable[[], float]] = None):
        self._lock = threading.Lock()
        self._value = 0.0
        self._callback = callback
        self._ident = None  # gauges are point-in-time: stamped but never tapped

    def set(self, value: float) -> None:
        if self._callback is not None:
            raise ValueError("callback gauges cannot be set")
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self._callback is not None:
            raise ValueError("callback gauges cannot be set")
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        if self._callback is not None:
            return float(self._callback())
        with self._lock:
            return self._value

    def _samples(self, name: str) -> Iterable[Tuple[str, Dict[str, str], float]]:
        yield name, {}, self.value


class Histogram:
    """Log-bucketed distribution with exact count/sum and cumulative buckets.

    ``counts[i]`` counts observations ``<= bounds[i]`` exclusive of earlier
    buckets; the final slot is the ``+Inf`` overflow (anything strictly
    above the top finite bound, including ``inf``, lands there; ``NaN``
    observations are ignored).  ``observe`` is one ``bisect`` plus three
    additions under one lock, so 8 threads hammering the same histogram
    still produce exact totals (tested).

    **Exemplars**: ``observe(value, trace_id=...)`` additionally records a
    ``(trace_id, value, unix_ts)`` exemplar for the bucket the value lands
    in (latest per bucket wins — the cheapest sampling policy that still
    links every bucket to a recent, replayable trace).  The registry
    renders them in OpenMetrics exemplar syntax on ``/metrics``.
    """

    __slots__ = (
        "_lock", "bounds", "_counts", "_sum", "_count", "_min", "_max",
        "_le_strings", "_exemplars", "_ident",
    )

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("duplicate bucket bounds")
        self._lock = threading.Lock()
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf
        self._le_strings = tuple(_format_value(b) for b in bounds) + ("+Inf",)
        self._exemplars: Dict[str, Tuple[str, float, float]] = {}
        self._ident = None  # (name, labelnames, labelvalues, help) once registered

    def observe(self, value: float, trace_id: Optional[str] = None) -> None:
        if not _enabled:
            return
        if value != value:  # NaN cannot be bucketed meaningfully
            return
        i = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[i] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if trace_id is not None:
                self._exemplars[self._le_strings[i]] = (
                    trace_id, value, time.time()
                )
        tap = _tap
        if tap is not None and self._ident is not None:
            name, labelnames, labelvalues, help = self._ident
            # Bounds ride along so a replaying registry that has never seen
            # this histogram creates it with identical buckets (windowed
            # snapshot diffs raise on mismatched bounds).
            tap.append(
                ("h", name, labelnames, labelvalues, help,
                 self.bounds, value, trace_id)
            )

    def exemplars(self) -> Dict[str, Tuple[str, float, float]]:
        """``le-string → (trace_id, value, unix_ts)``, latest per bucket."""
        with self._lock:
            return dict(self._exemplars)

    def exemplar_for(
        self, sample_name: str, labels: Dict[str, str]
    ) -> Optional[Tuple[str, float, float]]:
        """The exemplar for one exposition sample (``*_bucket`` lines only)."""
        if not sample_name.endswith("_bucket"):
            return None
        le = labels.get("le")
        if le is None:
            return None
        with self._lock:
            return self._exemplars.get(le)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> "HistogramSnapshot":
        """A consistent cumulative snapshot (bounds, per-bucket counts,
        sum, count) — the unit the windowed ring buffers store."""
        with self._lock:
            return HistogramSnapshot(
                self.bounds, tuple(self._counts), self._sum, self._count
            )

    def percentile(self, q: float) -> float:
        """Estimated q-quantile (0 <= q <= 1), interpolated within its bucket.

        The estimate lands in the same bucket as the exact order statistic,
        so the error is bounded by that bucket's width (geometric buckets →
        bounded relative error).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            counts = list(self._counts)
            total = self._count
            lo_seen, hi_seen = self._min, self._max
        if total == 0:
            return 0.0
        rank = q * (total - 1) + 1  # 1-based order statistic, interpolated
        cumulative = 0
        for i, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                # Interpolation bounds: the bucket's range clamped to the
                # observed min/max, so the estimate never leaves
                # [min seen, max seen].  (The global min always lives in the
                # lowest non-empty bucket, so `lower = lo_seen` is exact
                # there; elsewhere lo_seen can only tighten the bound.)
                lower = lo_seen if i == 0 else max(self.bounds[i - 1], lo_seen)
                upper = hi_seen if i == len(self.bounds) else min(self.bounds[i], hi_seen)
                if math.isinf(upper):
                    # Observations at +Inf: clamp to the top finite bound.
                    if math.isinf(lower):
                        return self.bounds[-1]
                    return max(lower, self.bounds[-1])
                if upper <= lower:
                    return upper
                fraction = (rank - cumulative) / bucket_count
                return lower + (upper - lower) * min(1.0, fraction)
            cumulative += bucket_count
        return self.bounds[-1] if math.isinf(hi_seen) else hi_seen

    def summary(self) -> dict:
        """JSON-friendly p50/p90/p99/mean block for /statz-style output."""
        with self._lock:
            total, total_sum = self._count, self._sum
        return {
            "count": total,
            "p50": round(self.percentile(0.50), 3),
            "p90": round(self.percentile(0.90), 3),
            "p99": round(self.percentile(0.99), 3),
            "mean": round(total_sum / total, 3) if total else 0.0,
        }

    def _samples(self, name: str) -> Iterable[Tuple[str, Dict[str, str], float]]:
        with self._lock:
            counts = list(self._counts)
            total, total_sum = self._count, self._sum
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, counts):
            cumulative += bucket_count
            yield f"{name}_bucket", {"le": _format_value(bound)}, cumulative
        yield f"{name}_bucket", {"le": "+Inf"}, total
        yield f"{name}_sum", {}, total_sum
        yield f"{name}_count", {}, total


# -- windowed snapshots (ring buffers over cumulative metrics) ---------------
#
# Prometheus-style metrics are cumulative: a counter or histogram only ever
# grows, and rates are a *reader's* concern.  The SLO engine needs trailing
# windows ("errors over the last 5 minutes / last hour") without external
# storage, so these ring buffers keep periodic cumulative snapshots and
# answer `delta(window)` as `current - snapshot_at(now - window)`.  Memory
# is bounded by `horizon / resolution` slots; anything older falls off the
# ring (rollover), and a window reaching past recorded history falls back
# to the oldest snapshot (or to zero while the process is younger than the
# window — cumulative metrics start at zero, so that base is exact).


class HistogramSnapshot:
    """One cumulative histogram state: per-bucket counts plus sum/count."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(
        self,
        bounds: Tuple[float, ...],
        counts: Tuple[int, ...],
        sum_: float,
        count: int,
    ):
        self.bounds = bounds
        self.counts = counts
        self.sum = sum_
        self.count = count

    def count_le(self, threshold: float) -> int:
        """Observations known to be ``<= threshold`` (bucket-quantized:
        the threshold is snapped up to the bucket bound that contains it,
        so the answer counts everything in buckets whose upper bound is
        the snap target or below)."""
        index = bisect_left(self.bounds, threshold)
        return sum(self.counts[: index + 1])

    def add(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        if self.bounds != other.bounds:
            raise ValueError("cannot merge snapshots with different buckets")
        return HistogramSnapshot(
            self.bounds,
            tuple(a + b for a, b in zip(self.counts, other.counts)),
            self.sum + other.sum,
            self.count + other.count,
        )

    def delta(self, earlier: Optional["HistogramSnapshot"]) -> "HistogramSnapshot":
        if earlier is None:
            return self
        if self.bounds != earlier.bounds:
            raise ValueError("cannot diff snapshots with different buckets")
        return HistogramSnapshot(
            self.bounds,
            tuple(a - b for a, b in zip(self.counts, earlier.counts)),
            self.sum - earlier.sum,
            self.count - earlier.count,
        )

    def percentile(self, q: float) -> float:
        """Estimated q-quantile of the observations in this snapshot,
        interpolated within its bucket (same rank logic as
        :meth:`Histogram.percentile`, without the live min/max clamp —
        a windowed delta has no min/max, so bucket bounds are used)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * (self.count - 1) + 1
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = 0.0 if i == 0 else self.bounds[i - 1]
                if i == len(self.bounds):  # +Inf overflow bucket
                    return self.bounds[-1]
                upper = self.bounds[i]
                fraction = (rank - cumulative) / bucket_count
                return lower + (upper - lower) * min(1.0, fraction)
            cumulative += bucket_count
        return self.bounds[-1]

    @classmethod
    def zero(cls, bounds: Tuple[float, ...]) -> "HistogramSnapshot":
        return cls(bounds, (0,) * (len(bounds) + 1), 0.0, 0)


class _RingWindow:
    """Ring buffer of ``(ts, cumulative payload)`` snapshots.

    ``record(now)`` stores the source's current cumulative state, at most
    once per ``resolution_s`` (denser calls are no-ops — the last snapshot
    is still fresh).  ``delta(window_s, now)`` diffs the *live* state
    against the newest stored snapshot at least ``window_s`` old; it never
    reads a stale "current" value.  Subclasses define what a payload is.
    """

    def __init__(self, horizon_s: float, resolution_s: float):
        if horizon_s <= 0 or resolution_s <= 0:
            raise ValueError("horizon and resolution must be positive")
        self.horizon_s = float(horizon_s)
        self.resolution_s = float(resolution_s)
        slots = int(math.ceil(horizon_s / resolution_s)) + 2
        self._snaps: "deque[Tuple[float, object]]" = deque(maxlen=slots)
        self._lock = threading.Lock()

    def _current(self):  # pragma: no cover - interface
        raise NotImplementedError

    def record(self, now: Optional[float] = None) -> None:
        now = time.monotonic() if now is None else now
        with self._lock:
            if self._snaps and now - self._snaps[-1][0] < self.resolution_s:
                return
        payload = self._current()
        with self._lock:
            if self._snaps and now - self._snaps[-1][0] < self.resolution_s:
                return
            self._snaps.append((now, payload))

    def __len__(self) -> int:
        with self._lock:
            return len(self._snaps)

    def span_s(self, now: Optional[float] = None) -> float:
        """Seconds of history the ring currently covers."""
        now = time.monotonic() if now is None else now
        with self._lock:
            if not self._snaps:
                return 0.0
            return now - self._snaps[0][0]

    def dump(self) -> List[Tuple[float, object]]:
        """Every stored ``(monotonic_ts, payload)`` pair, oldest first —
        the raw material SLO-state persistence serializes."""
        with self._lock:
            return list(self._snaps)

    def restore(self, items: Iterable[Tuple[float, object]]) -> None:
        """Replace the ring contents with ``(monotonic_ts, payload)`` pairs
        (already re-anchored to this process's monotonic clock, oldest
        first).  Used when loading persisted SLO window state."""
        with self._lock:
            self._snaps.clear()
            for ts, payload in items:
                self._snaps.append((float(ts), payload))

    def _base_at(self, cutoff: float):
        """The newest stored payload with ``ts <= cutoff`` (None when the
        ring holds no snapshot that old — history shorter than the
        window), plus its timestamp."""
        with self._lock:
            base = None
            base_ts = None
            for ts, payload in self._snaps:
                if ts <= cutoff:
                    base, base_ts = payload, ts
                else:
                    break
            if base is None and self._snaps:
                # History does not reach the cutoff.  If the ring rolled
                # over (we *dropped* older snapshots) the oldest survivor
                # is the best available base; if the process is simply
                # younger than the window, zero (= metric birth) is exact.
                if len(self._snaps) == self._snaps.maxlen:
                    base, base_ts = self._snaps[0][1], self._snaps[0][0]
            return base, base_ts


class CounterWindow(_RingWindow):
    """Trailing-window deltas over one cumulative scalar (a
    :class:`Counter`, a monotone gauge, or any float-returning callable)."""

    def __init__(
        self,
        source,
        horizon_s: float,
        resolution_s: float,
    ):
        self._source = source
        super().__init__(horizon_s, resolution_s)

    def _current(self) -> float:
        source = self._source
        value = source() if callable(source) else source.value
        return float(value)

    def delta(self, window_s: float, now: Optional[float] = None) -> float:
        """Increase over the trailing ``window_s`` seconds (clamped at 0 —
        a counter reset shows as no progress, not negative progress)."""
        now = time.monotonic() if now is None else now
        current = self._current()
        base, _ = self._base_at(now - window_s)
        if base is None:
            base = 0.0
        return max(0.0, current - float(base))


class HistogramWindow(_RingWindow):
    """Trailing-window bucket deltas over one cumulative histogram source.

    ``source`` is a :class:`Histogram` or a zero-argument callable
    returning a :class:`HistogramSnapshot` (aggregating callables let one
    window cover several children of a labeled family).  ``delta``
    returns a :class:`HistogramSnapshot` holding only the observations
    that happened inside the window — windowed percentiles and
    threshold counts come from that.
    """

    def __init__(
        self,
        source,
        horizon_s: float,
        resolution_s: float,
    ):
        self._source = source
        super().__init__(horizon_s, resolution_s)

    def _current(self) -> HistogramSnapshot:
        source = self._source
        return source() if callable(source) else source.snapshot()

    def delta(
        self, window_s: float, now: Optional[float] = None
    ) -> HistogramSnapshot:
        now = time.monotonic() if now is None else now
        current = self._current()
        base, _ = self._base_at(now - window_s)
        return current.delta(base)


class _Family:
    """A labeled metric family: one child metric per label-value tuple."""

    def __init__(self, name: str, help: str, kind: str, labelnames: Tuple[str, ...], factory):
        self.name = name
        self.help = help
        self.kind = kind
        self.labelnames = labelnames
        self._factory = factory
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, **labelvalues: str):
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._factory()
                if hasattr(child, "_ident"):
                    child._ident = (self.name, self.labelnames, key, self.help)
                self._children[key] = child
            return child

    def items(self) -> List[Tuple[Dict[str, str], object]]:
        """``(labels dict, child metric)`` pairs — read-side introspection
        (the band-attribution report walks these)."""
        with self._lock:
            children = list(self._children.items())
        return [(dict(zip(self.labelnames, key)), child) for key, child in children]

    def exemplar_for(self, sample_name: str, labels: Dict[str, str]):
        """Dispatch an exemplar lookup to the child the labels identify."""
        key = tuple(labels.get(n) for n in self.labelnames)
        with self._lock:
            child = self._children.get(key)
        lookup = getattr(child, "exemplar_for", None)
        return lookup(sample_name, labels) if lookup is not None else None

    def _samples(self, name: str) -> Iterable[Tuple[str, Dict[str, str], float]]:
        with self._lock:
            children = list(self._children.items())
        for key, child in children:
            labels = dict(zip(self.labelnames, key))
            for sample_name, sample_labels, value in child._samples(name):
                merged = dict(labels)
                merged.update(sample_labels)
                yield sample_name, merged, value


class MetricsRegistry:
    """Named metrics plus scrape-time collectors; renders Prometheus text.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice for
    the same name returns the same object, and asking with a conflicting
    kind or label set raises — the registry is the single source of truth
    for what a name means.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: "Dict[str, Tuple[str, object]]" = {}
        self._help: Dict[str, str] = {}
        self._collectors: List[Callable[[], Iterable[Sample]]] = []
        self._windows: List[_RingWindow] = []

    # -- registration --------------------------------------------------------

    def _get_or_create(self, name: str, help: str, kind: str, labelnames, factory):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_NAME_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                existing_kind, metric = existing
                existing_labels = (
                    metric.labelnames if isinstance(metric, _Family) else ()
                )
                if existing_kind != kind or existing_labels != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as {existing_kind} "
                        f"with labels {existing_labels}"
                    )
                return metric
            if labelnames:
                metric = _Family(name, help, kind, labelnames, factory)
            else:
                metric = factory()
                if hasattr(metric, "_ident"):
                    metric._ident = (name, (), (), help)
            self._metrics[name] = (kind, metric)
            self._help[name] = help
            return metric

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        return self._get_or_create(name, help, "counter", labelnames, Counter)

    def gauge(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        callback: Optional[Callable[[], float]] = None,
    ):
        if callback is not None and labelnames:
            raise ValueError("callback gauges cannot be labeled")
        return self._get_or_create(
            name, help, "gauge", labelnames, lambda: Gauge(callback)
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
    ):
        return self._get_or_create(
            name, help, "histogram", labelnames, lambda: Histogram(buckets)
        )

    def register_collector(self, collector: Callable[[], Iterable[Sample]]) -> None:
        """Add a scrape-time sample source (component stats mirrors)."""
        with self._lock:
            if collector not in self._collectors:
                self._collectors.append(collector)

    def unregister_collector(self, collector: Callable[[], Iterable[Sample]]) -> None:
        with self._lock:
            if collector in self._collectors:
                self._collectors.remove(collector)

    # -- windowed snapshots --------------------------------------------------

    def register_window(self, window: _RingWindow) -> None:
        """Attach a ring-buffer window so :meth:`record_windows` ticks it.

        Windows are how trailing-interval views (burn rates, windowed
        percentiles) are derived from cumulative metrics without external
        storage — see :class:`CounterWindow` / :class:`HistogramWindow`.
        """
        with self._lock:
            if window not in self._windows:
                self._windows.append(window)

    def unregister_window(self, window: _RingWindow) -> None:
        with self._lock:
            if window in self._windows:
                self._windows.remove(window)

    def record_windows(self, now: Optional[float] = None) -> None:
        """Snapshot every registered window (one periodic tick serves all
        of them; each window self-limits to its own resolution)."""
        with self._lock:
            windows = list(self._windows)
        for window in windows:
            window.record(now)

    # -- cross-process replay ------------------------------------------------

    def replay_events(self, events: Iterable[tuple]) -> int:
        """Re-apply captured update events from another process's registry.

        Each event is self-describing (name, labelnames, labelvalues, help —
        histograms additionally carry their bucket bounds and the exemplar
        trace id), so replay is get-or-create: families the parent never
        registered are created with the worker's exact shape, families that
        already exist are simply incremented.  Malformed or conflicting
        events are skipped, never raised — the serving path must not fail
        on telemetry.  Returns the number of events applied.
        """
        applied = 0
        for event in events:
            try:
                kind = event[0]
                if kind == "c":
                    _, name, labelnames, labelvalues, help, amount = event
                    labelnames = tuple(labelnames)
                    metric = self.counter(name, help, labelnames=labelnames)
                    if labelnames:
                        metric = metric.labels(**dict(zip(labelnames, labelvalues)))
                    metric.inc(amount)
                elif kind == "h":
                    (_, name, labelnames, labelvalues, help,
                     bounds, value, trace_id) = event
                    labelnames = tuple(labelnames)
                    metric = self.histogram(
                        name, help, labelnames=labelnames, buckets=tuple(bounds)
                    )
                    if labelnames:
                        metric = metric.labels(**dict(zip(labelnames, labelvalues)))
                    metric.observe(value, trace_id=trace_id)
                else:
                    continue
                applied += 1
            except (ValueError, TypeError):
                continue
        return applied

    def reset(self) -> None:
        """Drop every metric and collector (tests and benchmarks only)."""
        with self._lock:
            self._metrics.clear()
            self._collectors.clear()
            self._help.clear()
            self._windows.clear()

    def get_metric(self, name: str):
        """The registered metric object (or family) for *name*, else None."""
        with self._lock:
            entry = self._metrics.get(name)
            return entry[1] if entry is not None else None

    def collect(self) -> List[Sample]:
        """Every current sample — registered metrics plus collector output.

        The flat-snapshot twin of :meth:`render`; the metrics exporter
        ships these as JSON instead of Prometheus text.
        """
        with self._lock:
            metrics = list(self._metrics.items())
            collectors = list(self._collectors)
        samples: List[Sample] = []
        for name, (kind, metric) in sorted(metrics):
            for sample_name, labels, value in metric._samples(name):
                samples.append(Sample(sample_name, value, dict(labels), kind=kind))
        for collector in collectors:
            samples.extend(collector())
        return samples

    # -- exposition ----------------------------------------------------------

    def render(self) -> str:
        """The registry in Prometheus text exposition format (version 0.0.4),
        with OpenMetrics exemplar suffixes on histogram bucket lines that
        have one (see :meth:`Histogram.observe`)."""
        with self._lock:
            metrics = list(self._metrics.items())
            collectors = list(self._collectors)
            helps = dict(self._help)
        lines: List[str] = []
        for name, (kind, metric) in sorted(metrics):
            help_text = helps.get(name, "")
            if help_text:
                lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {kind}")
            exemplar_for = getattr(metric, "exemplar_for", None)
            for sample_name, labels, value in metric._samples(name):
                line = f"{sample_name}{_format_labels(labels)} {_format_value(value)}"
                if exemplar_for is not None:
                    exemplar = exemplar_for(sample_name, labels)
                    if exemplar is not None:
                        line += _format_exemplar(exemplar)
                lines.append(line)
        # Samples of one name must be contiguous in the exposition, so
        # collector output is buffered and grouped before rendering.
        grouped: "Dict[str, Tuple[str, str, List[Sample]]]" = {}
        for collector in collectors:
            for sample in collector():
                if sample.name in helps:
                    raise ValueError(
                        f"collector sample {sample.name!r} collides with a "
                        f"registered metric"
                    )
                entry = grouped.get(sample.name)
                if entry is None:
                    grouped[sample.name] = (sample.kind, sample.help, [sample])
                else:
                    entry[2].append(sample)
        for name, (kind, help_text, samples) in grouped.items():
            if help_text:
                lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {kind}")
            for sample in samples:
                lines.append(
                    f"{sample.name}{_format_labels(sample.labels)} "
                    f"{_format_value(sample.value)}"
                )
        return "\n".join(lines) + "\n"


#: The process-global default registry — what ``GET /metrics`` exposes.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
