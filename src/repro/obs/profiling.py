"""Continuous profiling: thread-sampling CPU profiles + tracemalloc heaps.

Two complementary always-on-capable profilers, both cheap enough to run
in production and both per-process (the pool workers run their own and
ship results over the task pipe for fleet aggregation):

* :class:`SamplingProfiler` — a daemon thread wakes ``hz`` times per
  second, walks ``sys._current_frames()`` and folds each thread's stack
  into the standard flamegraph *collapsed* format
  (``root;caller;callee count``).  Counts are cumulative; a trailing
  window is just two snapshots diffed, which is what
  ``GET /debug/pprof?seconds=N`` serves.  Every tick honors the
  instrumentation kill switch, so ``set_instrumentation_enabled(False)``
  stops the cost without tearing the thread down.
* ``tracemalloc``-backed heap snapshots (:func:`heap_snapshot`) with
  explicit :func:`start_heap_tracking` / :func:`stop_heap_tracking` —
  tracking is off by default because tracemalloc taxes every allocation;
  ``GET /debug/heap`` toggles and reads it.

:func:`merge_folded` sums folded-stack dicts across processes — the
fleet view is literally the sum of the per-process flamegraphs.
"""

from __future__ import annotations

import sys
import threading
import time
import tracemalloc
from typing import Dict, Iterable, List, Optional

from repro.obs.metrics import MetricsRegistry, get_registry, instrumentation_enabled

#: Default sampling frequency (samples per second per thread).
DEFAULT_HZ = 25.0
#: Default cap on distinct folded stacks retained (overflow folds into one).
DEFAULT_MAX_STACKS = 4096
#: Default cap on frames walked per stack.
DEFAULT_MAX_DEPTH = 48
#: Bucket that absorbs samples once ``max_stacks`` distinct stacks exist.
OVERFLOW_STACK = "_overflow_"


def _fold_stack(frame, max_depth: int) -> str:
    """One thread's stack as ``root;...;leaf`` (file:function per frame)."""
    parts: List[str] = []
    depth = 0
    while frame is not None and depth < max_depth:
        code = frame.f_code
        filename = code.co_filename.rsplit("/", 1)[-1]
        parts.append(f"{filename}:{code.co_name}")
        frame = frame.f_back
        depth += 1
    parts.reverse()
    return ";".join(parts) if parts else "(empty)"


def merge_folded(profiles: Iterable[Dict[str, int]]) -> Dict[str, int]:
    """Sum folded-stack count dicts (per-process profiles → fleet profile)."""
    merged: Dict[str, int] = {}
    for profile in profiles:
        if not profile:
            continue
        for stack, count in profile.items():
            merged[stack] = merged.get(stack, 0) + int(count)
    return merged


def render_folded(counts: Dict[str, int]) -> str:
    """Collapsed flamegraph text: one ``stack count`` line, hottest first
    (feed straight to ``flamegraph.pl`` or speedscope)."""
    lines = [
        f"{stack} {count}"
        for stack, count in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        if count > 0
    ]
    return "\n".join(lines) + ("\n" if lines else "")


class SamplingProfiler:
    """Wall-clock thread sampler producing folded flamegraph stacks.

    One daemon thread, no signals (signal-based profilers and
    ``ThreadingHTTPServer`` don't mix), no per-sample allocations beyond
    the folded string.  ``snapshot()`` returns cumulative counts;
    ``collect_window(seconds)`` blocks and returns only the samples taken
    inside the window.
    """

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        max_depth: int = DEFAULT_MAX_DEPTH,
        max_stacks: int = DEFAULT_MAX_STACKS,
        registry: Optional[MetricsRegistry] = None,
    ):
        if hz <= 0:
            raise ValueError("hz must be positive")
        if max_depth < 1 or max_stacks < 1:
            raise ValueError("max_depth and max_stacks must be at least 1")
        self.hz = float(hz)
        self.max_depth = int(max_depth)
        self.max_stacks = int(max_stacks)
        self._interval = 1.0 / self.hz
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}
        self._samples = 0
        self._ticks = 0
        self._skipped_ticks = 0  # kill switch was off
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._samples_counter = (
            registry if registry is not None else get_registry()
        ).counter(
            "xks_profile_samples_total",
            "Stack samples taken by the in-process sampling profiler.",
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="xks-profiler", daemon=True
            )
            self._thread.start()
        return self

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def close(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=2.0)
        self._thread = None

    # -- sampling loop -------------------------------------------------------

    def _run(self) -> None:
        own_id = threading.get_ident()
        while not self._stop.wait(self._interval):
            if not instrumentation_enabled():
                with self._lock:
                    self._skipped_ticks += 1
                continue
            self._sample_once(own_id)

    def _sample_once(self, own_id: int) -> int:
        """Take one sample of every live thread (except the profiler's own);
        returns how many stacks were recorded."""
        frames = sys._current_frames()
        taken = 0
        with self._lock:
            self._ticks += 1
            for thread_id, frame in frames.items():
                if thread_id == own_id:
                    continue
                stack = _fold_stack(frame, self.max_depth)
                if stack not in self._counts and len(self._counts) >= self.max_stacks:
                    stack = OVERFLOW_STACK
                self._counts[stack] = self._counts.get(stack, 0) + 1
                self._samples += 1
                taken += 1
        if taken:
            self._samples_counter.inc(taken)
        return taken

    # -- read side -----------------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        """Cumulative folded-stack counts since start."""
        with self._lock:
            return dict(self._counts)

    def totals(self) -> dict:
        with self._lock:
            return {
                "running": self.running,
                "hz": self.hz,
                "samples": self._samples,
                "ticks": self._ticks,
                "skipped_ticks": self._skipped_ticks,
                "distinct_stacks": len(self._counts),
            }

    def collect_window(self, seconds: float) -> Dict[str, int]:
        """Folded counts for samples taken during the next *seconds*
        (blocks the calling thread; the sampler keeps running)."""
        if not self.running or seconds <= 0:
            return {}
        before = self.snapshot()
        time.sleep(seconds)
        after = self.snapshot()
        window: Dict[str, int] = {}
        for stack, count in after.items():
            delta = count - before.get(stack, 0)
            if delta > 0:
                window[stack] = delta
        return window


# -- heap snapshots ----------------------------------------------------------


def heap_tracking_active() -> bool:
    return tracemalloc.is_tracing()


def start_heap_tracking(nframes: int = 1) -> bool:
    """Begin tracemalloc tracking (idempotent).  Returns whether tracking
    is active afterwards.  Off by default: tracemalloc intercepts every
    allocation, so it is opt-in per process."""
    if not tracemalloc.is_tracing():
        tracemalloc.start(max(1, int(nframes)))
    return tracemalloc.is_tracing()


def stop_heap_tracking() -> bool:
    """Stop tracemalloc tracking (idempotent).  Returns whether tracking
    was active before the call."""
    was_tracing = tracemalloc.is_tracing()
    if was_tracing:
        tracemalloc.stop()
    return was_tracing


def heap_snapshot(top: int = 30) -> dict:
    """Current heap state: traced totals plus the *top* allocation sites
    by live size.  ``{"tracing": False}`` when tracking is off — callers
    (the ``/debug/heap`` handler) surface how to turn it on."""
    if not tracemalloc.is_tracing():
        return {"tracing": False, "top": []}
    current, peak = tracemalloc.get_traced_memory()
    snapshot = tracemalloc.take_snapshot()
    stats = snapshot.statistics("lineno")[: max(0, int(top))]
    return {
        "tracing": True,
        "current_kb": round(current / 1024.0, 1),
        "peak_kb": round(peak / 1024.0, 1),
        "top": [
            {
                "site": f"{stat.traceback[0].filename}:{stat.traceback[0].lineno}",
                "size_kb": round(stat.size / 1024.0, 1),
                "count": stat.count,
            }
            for stat in stats
        ],
    }
