"""Structured, trace-id-correlated logging for every layer of the stack.

One schema, everywhere.  Each line is a single JSON object::

    {"ts": 1722945600.123, "level": "info", "component": "server",
     "event": "request", "trace_id": "91c4a0723bd84b1f",
     "path": "/api/search", "status": 200, "elapsed_ms": 3.21}

``ts``/``level``/``component``/``event`` are always present; ``trace_id``
is present whenever the emitting code runs inside a request context (the
server binds the request's trace id before touching the engine, so engine
and cache log lines correlate with the ``X-Trace-Id`` response header and
the exported span stream for free).  Everything else is event-specific.

Logging is **off by default** — ``src/`` emits nothing until either

* the ``REPRO_LOG_LEVEL`` environment variable is set (``debug``/``info``/
  ``warning``/``error``), which auto-configures JSON output to stderr on
  first use, or
* :func:`configure_logging` is called explicitly (``xksearch serve
  --log-json`` does).

Built on the stdlib ``logging`` package under the ``"repro"`` namespace
(``propagate`` off, ``NullHandler`` by default), so applications embedding
the library can install their own handlers instead.

**Adaptive sampling** (:func:`set_log_sampling`): under load, per-
``(component, event)`` token buckets head-sample DEBUG/INFO lines — each
stream gets ``rate`` lines per second with a ``burst`` allowance, and the
rest are dropped *with exact accounting* (``xks_log_sampled_total{event}``
via a scrape-time collector, so the count survives the instrumentation
kill switch).  WARN+ lines and lines emitted inside a traced request
(:func:`current_trace_id` bound) always pass: alerts and sampled traces
stay complete, only the high-volume steady-state chatter thins out.
"""

from __future__ import annotations

import contextvars
import io
import json
import logging
import os
import sys
import threading
import time
from typing import Any, Optional

#: Environment variable controlling the log level (debug/info/warning/error).
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

_ROOT_NAME = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "warn": logging.WARNING,
    "error": logging.ERROR,
    "off": logging.CRITICAL + 10,
    "none": logging.CRITICAL + 10,
}

# The per-context (per request thread) trace id every log line picks up.
_trace_id: "contextvars.ContextVar[Optional[str]]" = contextvars.ContextVar(
    "repro_trace_id", default=None
)

_configure_lock = threading.Lock()
_configured = False


def set_current_trace_id(trace_id: Optional[str]):
    """Bind *trace_id* to the current context; returns a reset token."""
    return _trace_id.set(trace_id)


def reset_current_trace_id(token) -> None:
    """Undo a :func:`set_current_trace_id` (request teardown)."""
    _trace_id.reset(token)


def current_trace_id() -> Optional[str]:
    """The trace id bound to the current context, if any."""
    return _trace_id.get()


def parse_level(name: Optional[str]) -> Optional[int]:
    """``"info"`` → ``logging.INFO``; None/unknown → None."""
    if not name:
        return None
    return _LEVELS.get(str(name).strip().lower())


class JsonLogFormatter(logging.Formatter):
    """Renders a record produced by :class:`ComponentLogger` as one JSON line."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 3),
            "level": record.levelname.lower(),
            "component": getattr(record, "component", record.name),
            "event": getattr(record, "event", record.getMessage()),
        }
        trace_id = getattr(record, "trace_id", None)
        if trace_id is not None:
            payload["trace_id"] = trace_id
        payload.update(getattr(record, "fields", {}))
        return json.dumps(payload, default=str, separators=(",", ":"))


class TextLogFormatter(logging.Formatter):
    """Human-oriented ``ts level component event k=v …`` rendering."""

    def format(self, record: logging.LogRecord) -> str:
        parts = [
            time.strftime("%H:%M:%S", time.localtime(record.created)),
            record.levelname.lower(),
            getattr(record, "component", record.name),
            getattr(record, "event", record.getMessage()),
        ]
        trace_id = getattr(record, "trace_id", None)
        if trace_id is not None:
            parts.append(f"trace_id={trace_id}")
        for key, value in getattr(record, "fields", {}).items():
            parts.append(f"{key}={value}")
        return " ".join(parts)


def _root() -> logging.Logger:
    logger = logging.getLogger(_ROOT_NAME)
    if not logger.handlers:
        logger.addHandler(logging.NullHandler())
        logger.propagate = False
        logger.setLevel(logging.WARNING)
    return logger


def configure_logging(
    level: Optional[str] = None,
    json_mode: bool = True,
    stream: Optional[io.TextIOBase] = None,
    force: bool = True,
) -> logging.Logger:
    """Install a handler on the ``repro`` logger and set its level.

    ``level`` defaults to ``REPRO_LOG_LEVEL`` (then ``info``).  With
    ``force`` the previous handler is replaced; without it an
    already-configured logger is left alone (the auto-configure path).
    Returns the root ``repro`` logger.
    """
    global _configured
    with _configure_lock:
        logger = _root()
        if _configured and not force:
            return logger
        resolved = parse_level(level)
        if resolved is None:
            resolved = parse_level(os.environ.get(LOG_LEVEL_ENV))
        if resolved is None:
            resolved = logging.INFO
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.setFormatter(JsonLogFormatter() if json_mode else TextLogFormatter())
        for old in [h for h in logger.handlers if not isinstance(h, logging.NullHandler)]:
            logger.removeHandler(old)
        logger.addHandler(handler)
        logger.setLevel(resolved)
        _configured = True
        return logger


def logging_configured() -> bool:
    return _configured


def reset_logging() -> None:
    """Return to the unconfigured (silent) state — tests only."""
    global _configured
    with _configure_lock:
        logger = _root()
        for old in [h for h in logger.handlers if not isinstance(h, logging.NullHandler)]:
            logger.removeHandler(old)
        logger.setLevel(logging.WARNING)
        _configured = False


def _auto_configure() -> None:
    """First-use hook: honor ``REPRO_LOG_LEVEL`` without an explicit call."""
    if _configured:
        return
    if os.environ.get(LOG_LEVEL_ENV):
        configure_logging(force=False)


# -- adaptive sampling --------------------------------------------------------


class _TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, capacity ``burst``."""

    __slots__ = ("rate", "burst", "tokens", "last")

    def __init__(self, rate: float, burst: float, now: float):
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.last = now

    def allow(self, now: float) -> bool:
        elapsed = now - self.last
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
            self.last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class LogSampler:
    """Per-``(component, event)`` head sampling with exact drop counts.

    One bucket per stream, created on first sight; drops are counted per
    event name in plain integers (no registry dependency on the emit
    path) and exposed lazily as ``xks_log_sampled_total{event}`` through
    a scrape-time collector, so the accounting is exact even while the
    instrumentation kill switch is off.
    """

    def __init__(self, rate: float, burst: Optional[float] = None):
        if rate <= 0:
            raise ValueError("sampling rate must be positive (or disable sampling)")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, 2.0 * rate)
        self._lock = threading.Lock()
        self._buckets: "dict[tuple[str, str], _TokenBucket]" = {}
        self._dropped: "dict[str, int]" = {}

    def allow(self, component: str, event: str) -> bool:
        now = time.monotonic()
        key = (component, event)
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = _TokenBucket(self.rate, self.burst, now)
                self._buckets[key] = bucket
            if bucket.allow(now):
                return True
            self._dropped[event] = self._dropped.get(event, 0) + 1
            return False

    def dropped(self) -> "dict[str, int]":
        with self._lock:
            return dict(self._dropped)

    @property
    def dropped_total(self) -> int:
        with self._lock:
            return sum(self._dropped.values())


_sampler: Optional[LogSampler] = None
_sampler_collector_registered = False


def _sampler_samples():
    """Scrape-time collector: exact per-event drop counts."""
    sampler = _sampler
    if sampler is None:
        return []
    from repro.obs.metrics import Sample  # late: logging must not need metrics

    return [
        Sample(
            "xks_log_sampled_total",
            count,
            {"event": event},
            kind="counter",
            help="Log lines dropped by adaptive sampling, by event.",
        )
        for event, count in sorted(sampler.dropped().items())
    ]


def set_log_sampling(
    rate: Optional[float], burst: Optional[float] = None
) -> Optional[LogSampler]:
    """Enable (or disable) adaptive log sampling process-wide.

    ``rate`` is lines/second allowed per ``(component, event)`` stream
    (burst defaults to ``max(1, 2×rate)``); ``None`` or ``<= 0`` disables
    sampling.  Returns the installed sampler (None when disabled).
    Wired to ``serve --log-sample RATE``.
    """
    global _sampler, _sampler_collector_registered
    if rate is None or rate <= 0:
        _sampler = None
        return None
    _sampler = LogSampler(rate, burst)
    if not _sampler_collector_registered:
        from repro.obs.metrics import get_registry

        get_registry().register_collector(_sampler_samples)
        _sampler_collector_registered = True
    return _sampler


def get_log_sampler() -> Optional[LogSampler]:
    return _sampler


class ComponentLogger:
    """A named source of structured events (``get_logger("engine")``).

    ``logger.info("query", algorithm="il", band="10-99", exec_ms=1.2)``
    emits one schema-conforming line; the current context's trace id is
    attached automatically.  ``enabled_for`` lets hot paths skip building
    field dicts entirely.
    """

    __slots__ = ("component", "_logger")

    def __init__(self, component: str):
        self.component = component
        self._logger = logging.getLogger(f"{_ROOT_NAME}.{component}")

    def enabled_for(self, level: str) -> bool:
        _auto_configure()
        resolved = parse_level(level)
        return self._logger.isEnabledFor(resolved if resolved is not None else logging.INFO)

    def _emit(self, level: int, event: str, fields: dict) -> None:
        _auto_configure()
        if not self._logger.isEnabledFor(level):
            return
        # Adaptive sampling: only DEBUG/INFO chatter outside a traced
        # request is eligible — WARN+ and trace-correlated lines always
        # pass (the sampler check runs after isEnabledFor, so disabled
        # levels never consume tokens or count as drops).
        sampler = _sampler
        if (
            sampler is not None
            and level < logging.WARNING
            and current_trace_id() is None
            and not sampler.allow(self.component, event)
        ):
            return
        self._logger.log(
            level,
            event,
            extra={
                "component": self.component,
                "event": event,
                "trace_id": current_trace_id(),
                "fields": fields,
            },
        )

    def debug(self, event: str, **fields: Any) -> None:
        self._emit(logging.DEBUG, event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._emit(logging.INFO, event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._emit(logging.WARNING, event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._emit(logging.ERROR, event, fields)


def get_logger(component: str) -> ComponentLogger:
    """The structured logger for one component (``server``, ``engine``, …)."""
    _root()  # ensure the namespace is initialized (NullHandler, no propagate)
    return ComponentLogger(component)
