"""Fleet aggregation: one scrape-time view over every pool worker.

The task return-path (``TaskResult.events``) already makes the parent's
counters fleet-accurate; what it cannot answer is *liveness* and
*attribution* — which workers are up right now, how much work each one
has done, what each one's profiler sees.  :class:`FleetCollector` fills
that gap:

* a daemon heartbeat thread calls
  :meth:`~repro.xksearch.parallel.WorkerPool.collect_snapshots` every
  ``heartbeat_s`` seconds and keeps the latest snapshot per worker;
* a scrape-time collector registered on the parent registry exposes
  ``xks_worker_up{worker}``, ``xks_worker_snapshot_age_seconds{worker}``
  and per-worker rollups (``xks_worker_queries_total{worker}``,
  ``xks_worker_profile_samples_total{worker}``) — **distinct names** from
  the replayed families, so the fleet view never double-counts the
  parent's ``/metrics`` totals;
* :meth:`statz_dict` feeds the ``/statz`` ``fleet`` section and
  :meth:`merged_profile` sums the workers' folded flamegraph stacks for
  ``GET /debug/pprof?fleet=1``.

A worker whose newest snapshot is older than ``stale_after_s`` (it
crashed, or it has been busy across several heartbeats) reports
``xks_worker_up 0``; a respawned worker gets a fresh worker id and simply
appears as a new series, while the dead id ages out.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Optional

from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry, Sample, get_registry
from repro.obs.profiling import merge_folded

_log = get_logger("fleet")

#: Default heartbeat interval (seconds).
DEFAULT_HEARTBEAT_S = 5.0
#: Snapshots older than this many heartbeats mark the worker down.
DEFAULT_STALE_HEARTBEATS = 3.0
#: Dead worker ids are forgotten entirely after this many heartbeats.
DEFAULT_FORGET_HEARTBEATS = 24.0


def _sum_samples(samples: Iterable[tuple], name: str) -> float:
    """Sum every sample value with *name* in a worker snapshot payload."""
    total = 0.0
    for sample_name, _labels, value in samples:
        if sample_name == name:
            total += value
    return total


class FleetCollector:
    """Heartbeat-driven merge of live per-worker telemetry snapshots."""

    def __init__(
        self,
        pool,
        registry: Optional[MetricsRegistry] = None,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        stale_after_s: Optional[float] = None,
    ):
        if heartbeat_s <= 0:
            raise ValueError("heartbeat_s must be positive")
        self.pool = pool
        self.heartbeat_s = float(heartbeat_s)
        self.stale_after_s = (
            float(stale_after_s)
            if stale_after_s is not None
            else self.heartbeat_s * DEFAULT_STALE_HEARTBEATS
        )
        self._forget_after_s = self.heartbeat_s * DEFAULT_FORGET_HEARTBEATS
        self._registry = registry if registry is not None else get_registry()
        self._lock = threading.Lock()
        self._snapshots: Dict[int, dict] = {}  # worker id → latest payload
        self._received_at: Dict[int, float] = {}  # worker id → monotonic ts
        self.heartbeats = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._registry.register_collector(self._collect)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "FleetCollector":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="xks-fleet-heartbeat", daemon=True
            )
            self._thread.start()
        return self

    def close(self) -> None:
        self._registry.unregister_collector(self._collect)
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=max(2.0, self.heartbeat_s + 1.0))
        self._thread = None

    # -- heartbeat -----------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self.heartbeat_s):
            try:
                self.poll()
            except Exception as exc:  # heartbeat must outlive any one failure
                _log.warning("fleet_heartbeat_failed", error=repr(exc))

    def poll(self) -> int:
        """One heartbeat: snapshot every idle worker, fold the results in.
        Returns how many workers answered."""
        snapshots = self.pool.collect_snapshots()
        now = time.monotonic()
        with self._lock:
            self.heartbeats += 1
            for payload in snapshots:
                worker = int(payload.get("worker", -1))
                self._snapshots[worker] = payload
                self._received_at[worker] = now
            # Forget ids that have been dark for a long time (retired
            # workers whose respawn took a fresh id).
            for worker in list(self._received_at):
                if now - self._received_at[worker] > self._forget_after_s:
                    del self._received_at[worker]
                    self._snapshots.pop(worker, None)
        return len(snapshots)

    # -- read side -----------------------------------------------------------

    def _entries(self) -> List[tuple]:
        """``(worker, payload, age_s, up)`` per known worker."""
        now = time.monotonic()
        with self._lock:
            items = [
                (worker, payload, now - self._received_at[worker])
                for worker, payload in sorted(self._snapshots.items())
            ]
        return [
            (worker, payload, age, age <= self.stale_after_s)
            for worker, payload, age in items
        ]

    def _collect(self) -> Iterable[Sample]:
        for worker, payload, age, up in self._entries():
            labels = {"worker": str(worker)}
            yield Sample(
                "xks_worker_up",
                1.0 if up else 0.0,
                dict(labels),
                kind="gauge",
                help="Whether each pool worker answered a recent heartbeat.",
            )
            yield Sample(
                "xks_worker_snapshot_age_seconds",
                round(age, 3),
                dict(labels),
                kind="gauge",
                help="Age of each worker's newest telemetry snapshot.",
            )
            samples = payload.get("samples", ())
            yield Sample(
                "xks_worker_queries_total",
                _sum_samples(samples, "xks_queries_total"),
                dict(labels),
                kind="counter",
                help="Queries executed inside each worker process.",
            )
            yield Sample(
                "xks_worker_profile_samples_total",
                _sum_samples(samples, "xks_profile_samples_total"),
                dict(labels),
                kind="counter",
                help="Profiler stack samples taken inside each worker.",
            )

    def statz_dict(self) -> dict:
        workers = {}
        for worker, payload, age, up in self._entries():
            workers[str(worker)] = {
                "pid": payload.get("pid"),
                "up": up,
                "snapshot_age_s": round(age, 3),
                "queries_total": _sum_samples(
                    payload.get("samples", ()), "xks_queries_total"
                ),
                "profile": payload.get("profile_totals", {}),
                "heap": {
                    key: value
                    for key, value in (payload.get("heap") or {}).items()
                    if key != "top"
                },
            }
        return {
            "heartbeat_s": self.heartbeat_s,
            "stale_after_s": self.stale_after_s,
            "heartbeats": self.heartbeats,
            "workers": workers,
        }

    def merged_profile(self) -> Dict[str, int]:
        """The fleet flamegraph: every worker's folded stacks summed."""
        with self._lock:
            profiles = [
                payload.get("profile") or {}
                for payload in self._snapshots.values()
            ]
        return merge_folded(profiles)
