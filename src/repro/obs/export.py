"""Trace/metrics export: ship observability signals out of the process.

PR 2 left every signal in-process (``/metrics`` is pull-only, traces die
in ``/debug/slow``).  This module pushes them to an external collector
without ever letting the collector's health affect the serving path:

* a :class:`ExportSink` is the transport — :class:`JsonlFileSink` appends
  JSON lines to a local file, :class:`HttpCollectorSink` POSTs batches to
  an OTLP-ish HTTP endpoint, :class:`MemorySink` captures them for tests;
* a :class:`BackgroundExporter` owns a **bounded** in-memory queue drained
  by one daemon flusher thread.  ``submit`` never blocks: a full queue
  drops the record and counts it.  A failing sink is retried with
  exponential backoff plus jitter; once retries are exhausted the batch is
  dropped and counted.  ``close`` flushes what it can within a deadline
  and counts the rest as dropped — accounting is exact:
  ``submitted == sent + dropped`` after ``close()``;
* :class:`TraceExporter` ships span trees (the server enqueues one record
  per traced request); :class:`MetricsExporter` snapshots a
  :class:`~repro.obs.metrics.MetricsRegistry` on an interval and ships the
  samples; :class:`SnapshotShipper` (``serve --snapshot-every``) adds alert
  transition records and an opt-in OTLP-shaped payload mode
  (:func:`otlp_metrics_record`).

Every exporter mirrors its accounting into the metrics registry
(``xks_export_sent_total``, ``xks_export_retries_total``,
``xks_export_dropped_total{reason=…}``, ``xks_export_queue_depth``), so
the export pipeline is itself observable from ``/metrics``.
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.request
from collections import deque
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry, get_registry

_log = get_logger("export")

#: Default bound on queued-but-unsent records.
DEFAULT_QUEUE_SIZE = 2048
#: Default records per sink send.
DEFAULT_BATCH_SIZE = 64
#: Default idle flush interval (seconds).
DEFAULT_FLUSH_INTERVAL = 0.25
#: Default attempts per batch (1 initial + retries).
DEFAULT_MAX_RETRIES = 4
#: Exponential backoff: base * 2**attempt seconds, capped, plus jitter.
DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_BACKOFF_MAX = 2.0
#: Jitter fraction of the computed backoff (full jitter would be 1.0).
DEFAULT_JITTER = 0.5

#: Drop reasons used in stats and the ``xks_export_dropped_total`` label.
DROP_QUEUE_FULL = "queue_full"
DROP_SEND_FAILED = "send_failed"
DROP_SHUTDOWN = "shutdown"

#: Default connect/read timeout for the HTTP sink (seconds).  A sink with
#: no timeout can hang the flusher thread forever on a stalled collector,
#: which then backs the bounded queue up into ``queue_full`` drops — so a
#: finite timeout is enforced, never optional.
DEFAULT_HTTP_TIMEOUT = 5.0


class ExportError(Exception):
    """A sink could not deliver a batch (transient; the exporter retries)."""


class ExportSink:
    """Transport interface: deliver a batch of JSON-able records or raise."""

    def send(self, records: List[dict]) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        pass

    def describe(self) -> str:
        return type(self).__name__


class MemorySink(ExportSink):
    """Collects records in memory (tests, examples)."""

    def __init__(self):
        self.records: List[dict] = []
        self._lock = threading.Lock()

    def send(self, records: List[dict]) -> None:
        with self._lock:
            self.records.extend(records)

    def __len__(self) -> int:
        with self._lock:
            return len(self.records)


class JsonlFileSink(ExportSink):
    """Appends one JSON object per line to a local file.

    The file is opened lazily (so constructing the sink never fails a
    server start) and flushed after every batch — a crash loses at most
    the batch in flight.
    """

    def __init__(self, path: str):
        self.path = path
        self._file = None
        self._lock = threading.Lock()

    def send(self, records: List[dict]) -> None:
        try:
            with self._lock:
                if self._file is None:
                    self._file = open(self.path, "a", encoding="utf-8")
                for record in records:
                    self._file.write(json.dumps(record, default=str) + "\n")
                self._file.flush()
        except OSError as exc:
            raise ExportError(f"jsonl write to {self.path} failed: {exc}") from exc

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def describe(self) -> str:
        return f"jsonl:{self.path}"


class HttpCollectorSink(ExportSink):
    """POSTs batches as ``{"records": [...]}`` JSON to a collector URL.

    Any non-2xx status, connection failure or timeout raises
    :class:`ExportError`; the exporter's retry/backoff policy decides what
    happens next.  The serving path never sees the exception.
    """

    def __init__(
        self,
        url: str,
        timeout: float = DEFAULT_HTTP_TIMEOUT,
        content_type: str = "application/json",
    ):
        if timeout is None or timeout <= 0:
            # timeout=None means "block forever" to urllib — one stalled
            # collector would wedge the flusher thread and turn every
            # subsequent submit into a queue_full drop.
            raise ValueError("HttpCollectorSink timeout must be a positive number")
        self.url = url
        self.timeout = float(timeout)
        self.content_type = content_type

    def send(self, records: List[dict]) -> None:
        body = json.dumps({"records": records}, default=str).encode("utf-8")
        request = urllib.request.Request(
            self.url,
            data=body,
            headers={
                # Always explicit: urllib would otherwise default POSTed
                # bytes to x-www-form-urlencoded, which strict collectors
                # reject.
                "Content-Type": self.content_type,
                "Content-Length": str(len(body)),
            },
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                if not 200 <= response.status < 300:
                    raise ExportError(f"collector returned {response.status}")
        except ExportError:
            raise
        except Exception as exc:  # URLError, timeout, RemoteDisconnected, ...
            raise ExportError(f"POST {self.url} failed: {exc}") from exc

    def describe(self) -> str:
        return f"http:{self.url}"


def otlp_metrics_record(
    samples: List[Any],
    ts: float,
    service_name: str = "xksearch",
) -> dict:
    """Shape one registry snapshot as an OTLP-style JSON metrics payload.

    Follows the ``resourceMetrics → scopeMetrics → metrics`` nesting of
    OTLP/JSON with ``gauge``/``sum`` data points: counters and the
    flattened histogram series (``*_bucket``/``*_sum``/``*_count``) become
    cumulative monotonic sums, gauges become gauges.  "OTLP-shaped" — a
    faithful JSON silhouette for collectors that speak it, produced
    without an OTLP dependency.
    """
    nanos = int(ts * 1e9)
    by_name: "Dict[str, Tuple[str, List[Any]]]" = {}
    for sample in samples:
        entry = by_name.setdefault(sample.name, (sample.kind, []))
        entry[1].append(sample)
    metrics = []
    for name in sorted(by_name):
        kind, group = by_name[name]
        points = [
            {
                "timeUnixNano": nanos,
                "asDouble": float(sample.value),
                "attributes": [
                    {"key": key, "value": {"stringValue": str(value)}}
                    for key, value in sorted(sample.labels.items())
                ],
            }
            for sample in group
        ]
        if kind in ("counter", "histogram"):
            metrics.append(
                {
                    "name": name,
                    "sum": {
                        "dataPoints": points,
                        "aggregationTemporality": 2,  # CUMULATIVE
                        "isMonotonic": True,
                    },
                }
            )
        else:
            metrics.append({"name": name, "gauge": {"dataPoints": points}})
    return {
        "kind": "metrics",
        "format": "otlp",
        "ts": ts,
        "resourceMetrics": [
            {
                "resource": {
                    "attributes": [
                        {
                            "key": "service.name",
                            "value": {"stringValue": service_name},
                        }
                    ]
                },
                "scopeMetrics": [
                    {
                        "scope": {"name": "repro.obs"},
                        "metrics": metrics,
                    }
                ],
            }
        ],
    }


class ExportStats:
    """Exact accounting for one exporter (independent of the kill switch).

    The invariant after ``close()``: ``submitted == sent + dropped_total``.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.submitted = 0
        self.sent = 0
        self.retries = 0
        self.batches = 0
        self.dropped: Dict[str, int] = {}

    def _add(self, field: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + amount)

    def drop(self, reason: str, amount: int = 1) -> None:
        with self._lock:
            self.dropped[reason] = self.dropped.get(reason, 0) + amount

    @property
    def dropped_total(self) -> int:
        with self._lock:
            return sum(self.dropped.values())

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "submitted": self.submitted,
                "sent": self.sent,
                "retries": self.retries,
                "batches": self.batches,
                "dropped": dict(self.dropped),
                "dropped_total": sum(self.dropped.values()),
            }


class BackgroundExporter:
    """Bounded queue + daemon flusher; the serving path never blocks.

    ``submit(record)`` appends under a lock and returns immediately —
    ``False`` (plus a drop count) when the queue is full.  The flusher
    drains batches and hands them to the sink; failures are retried
    ``max_retries`` times with capped exponential backoff and jitter,
    then the batch is dropped with reason ``send_failed``.

    ``close(flush_timeout)`` stops accepting records, lets the flusher
    drain what it can inside the deadline (one final delivery attempt per
    batch, no long backoffs), counts the remainder as ``shutdown`` drops,
    and closes the sink.
    """

    #: Label value for this exporter's registry metrics.
    kind = "trace"

    def __init__(
        self,
        sink: ExportSink,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        batch_size: int = DEFAULT_BATCH_SIZE,
        flush_interval: float = DEFAULT_FLUSH_INTERVAL,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_max: float = DEFAULT_BACKOFF_MAX,
        jitter: float = DEFAULT_JITTER,
        registry: Optional[MetricsRegistry] = None,
        name: Optional[str] = None,
    ):
        if queue_size < 1:
            raise ValueError("queue_size must be at least 1")
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.sink = sink
        self.name = name or self.kind
        self.queue_size = queue_size
        self.batch_size = batch_size
        self.flush_interval = flush_interval
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.jitter = jitter
        self.stats = ExportStats()
        self._registry = registry if registry is not None else get_registry()
        self._rng = random.Random()
        self._queue: "deque[dict]" = deque()
        self._in_flight = 0
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._stopping = False
        self._closed = False
        self._mirror_metrics()
        self._thread = threading.Thread(
            target=self._run, name=f"xks-export-{self.name}", daemon=True
        )
        self._thread.start()

    # -- registry mirror -----------------------------------------------------

    def _mirror_metrics(self) -> None:
        registry = self._registry
        self._sent_counter = registry.counter(
            "xks_export_sent_total",
            "Records delivered to the export sink.",
            labelnames=("exporter",),
        ).labels(exporter=self.name)
        self._retry_counter = registry.counter(
            "xks_export_retries_total",
            "Batch delivery retries (sink failures).",
            labelnames=("exporter",),
        ).labels(exporter=self.name)
        self._dropped_family = registry.counter(
            "xks_export_dropped_total",
            "Records dropped instead of exported, by reason.",
            labelnames=("exporter", "reason"),
        )
        self._depth_gauge = registry.gauge(
            "xks_export_queue_depth",
            "Records currently queued for export.",
            labelnames=("exporter",),
        ).labels(exporter=self.name)

    def _count_drop(self, reason: str, amount: int) -> None:
        self.stats.drop(reason, amount)
        self._dropped_family.labels(exporter=self.name, reason=reason).inc(amount)

    # -- producer side -------------------------------------------------------

    def submit(self, record: dict) -> bool:
        """Enqueue one record; never blocks.  Returns False when dropped."""
        drop_reason = None
        with self._lock:
            if self._stopping:
                drop_reason = DROP_SHUTDOWN
            elif len(self._queue) >= self.queue_size:
                drop_reason = DROP_QUEUE_FULL
            else:
                self._queue.append(record)
            depth = len(self._queue)
        self.stats._add("submitted")
        self._depth_gauge.set(depth)
        if drop_reason is not None:
            self._count_drop(drop_reason, 1)
            return False
        self._wake.set()
        return True

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    # -- flusher -------------------------------------------------------------

    def _take_batch(self) -> List[dict]:
        with self._lock:
            batch = []
            while self._queue and len(batch) < self.batch_size:
                batch.append(self._queue.popleft())
            depth = len(self._queue)
            # Popped records stay visible to flush() until delivery resolves
            # (_deliver clears this) — "queue empty" alone is not "flushed".
            self._in_flight = len(batch)
        self._depth_gauge.set(depth)
        return batch

    def _backoff(self, attempt: int) -> float:
        delay = min(self.backoff_max, self.backoff_base * (2 ** attempt))
        return delay * (1.0 + self.jitter * self._rng.random())

    def _deliver(self, batch: List[dict], deadline: Optional[float] = None) -> bool:
        """Send one batch with the retry policy; True when it got through."""
        try:
            return self._deliver_inner(batch, deadline)
        finally:
            with self._lock:
                self._in_flight = 0

    def _deliver_inner(self, batch: List[dict], deadline: Optional[float]) -> bool:
        attempts = 1 + max(0, self.max_retries)
        for attempt in range(attempts):
            try:
                from repro.robustness import faultinject

                if faultinject.fire("fail-export") is not None:
                    raise RuntimeError("injected export failure")
                self.sink.send(batch)
            except Exception as exc:
                last_error = exc
                if attempt + 1 >= attempts:
                    break
                if deadline is not None and time.monotonic() >= deadline:
                    break
                self.stats._add("retries")
                self._retry_counter.inc()
                self._wake.clear()
                # clear → check → wait: close() sets _stopping before the
                # wake event, so a shutdown racing this clear() is caught by
                # one of the two checks and never waits out a long backoff.
                if self._stopping and deadline is None:
                    break
                self._wake.wait(self._backoff(attempt))
                if self._stopping and deadline is None:
                    break
            else:
                self.stats._add("sent", len(batch))
                self.stats._add("batches")
                self._sent_counter.inc(len(batch))
                return True
        _log.warning(
            "export_batch_dropped",
            exporter=self.name,
            sink=self.sink.describe(),
            records=len(batch),
            error=str(last_error),
        )
        self._count_drop(DROP_SEND_FAILED, len(batch))
        return False

    def _tick(self) -> None:
        """Periodic hook for subclasses (metrics snapshots)."""

    def _run(self) -> None:
        while True:
            self._wake.wait(self.flush_interval)
            self._wake.clear()
            if self._stopping and not self._queue:
                return
            self._tick()
            while True:
                batch = self._take_batch()
                if not batch:
                    break
                self._deliver(batch)
                if self._stopping:
                    break
            if self._stopping:
                return

    # -- shutdown ------------------------------------------------------------

    def _pending(self) -> int:
        with self._lock:
            return len(self._queue) + self._in_flight

    def flush(self, timeout: float = 5.0) -> bool:
        """Best-effort wait until queued *and* in-flight records resolve
        (True on success) — a batch mid-retry still counts as unflushed."""
        deadline = time.monotonic() + timeout
        self._wake.set()
        while time.monotonic() < deadline:
            if self._pending() == 0:
                return True
            time.sleep(0.01)
        return self._pending() == 0

    def close(self, flush_timeout: float = 5.0) -> None:
        """Stop accepting, drain within the deadline, count the rest dropped."""
        if self._closed:
            return
        self._closed = True
        with self._lock:
            self._stopping = True
        self._wake.set()
        self._thread.join(timeout=max(0.1, flush_timeout))
        # One final inline drain: anything the flusher left behind gets one
        # delivery attempt (bounded by the deadline), then counts as dropped.
        deadline = time.monotonic() + max(0.0, flush_timeout)
        while True:
            batch = self._take_batch()
            if not batch:
                break
            if time.monotonic() >= deadline or not self._deliver(batch, deadline=deadline):
                self._count_drop(DROP_SHUTDOWN, len(batch))
                while True:
                    rest = self._take_batch()
                    if not rest:
                        break
                    self._count_drop(DROP_SHUTDOWN, len(rest))
                break
        self._depth_gauge.set(0)
        with self._lock:
            self._in_flight = 0
        self.sink.close()
        _log.info(
            "exporter_closed",
            exporter=self.name,
            sink=self.sink.describe(),
            **self.stats.as_dict(),
        )

    def __enter__(self) -> "BackgroundExporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TraceExporter(BackgroundExporter):
    """Ships finished span trees (one record per traced request)."""

    kind = "trace"

    def export_trace(self, trace: Any) -> bool:
        """Enqueue a finished :class:`~repro.obs.tracing.Trace` (or dict)."""
        payload = trace if isinstance(trace, dict) else trace.to_dict()
        record = {"kind": "trace", "exported_at": time.time()}
        record.update(payload)
        return self.submit(record)


class MetricsExporter(BackgroundExporter):
    """Periodically snapshots a registry and ships the samples.

    One record per interval::

        {"kind": "metrics", "ts": ..., "samples":
            [{"name": ..., "labels": {...}, "value": ...}, ...]}
    """

    kind = "metrics"

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        sink: Optional[ExportSink] = None,
        interval: float = 10.0,
        **kwargs: Any,
    ):
        if sink is None:
            raise ValueError("MetricsExporter needs a sink")
        self.interval = interval
        self._source = registry if registry is not None else get_registry()
        self._last_snapshot = 0.0
        super().__init__(sink, registry=self._source, **kwargs)

    def snapshot(self) -> bool:
        """Enqueue one snapshot of the source registry now."""
        samples = [
            s
            for s in self._source.collect()
            # Exporting the export pipeline's own queue depth is noise.
            if not s.name.startswith("xks_export_")
        ]
        record = self.build_record(samples, time.time())
        self._last_snapshot = time.monotonic()
        return self.submit(record)

    def build_record(self, samples: List[Any], ts: float) -> dict:
        """Shape one snapshot's samples into the record to ship
        (subclasses override the payload format, not the plumbing)."""
        return {
            "kind": "metrics",
            "ts": ts,
            "samples": [
                {"name": s.name, "labels": s.labels, "value": s.value}
                for s in samples
            ],
        }

    def _tick(self) -> None:
        if time.monotonic() - self._last_snapshot >= self.interval:
            self.snapshot()


class SnapshotShipper(MetricsExporter):
    """Timed full-registry snapshots plus alert records, one pipeline.

    What ``serve --snapshot-every SECS`` runs: every interval the flusher
    thread snapshots the registry and ships it through the same bounded
    queue / retry / drop accounting as traces, and the SLO engine routes
    alert transition records through :meth:`ship_alert` so a collector
    sees state changes interleaved with the metrics they explain.  With
    ``otlp=True`` snapshots are shaped by :func:`otlp_metrics_record`
    instead of the flat ``samples`` list.
    """

    kind = "snapshot"

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        sink: Optional[ExportSink] = None,
        interval: float = 10.0,
        otlp: bool = False,
        service_name: str = "xksearch",
        **kwargs: Any,
    ):
        self.otlp = otlp
        self.service_name = service_name
        super().__init__(registry, sink, interval, **kwargs)

    def build_record(self, samples: List[Any], ts: float) -> dict:
        if self.otlp:
            return otlp_metrics_record(samples, ts, self.service_name)
        return super().build_record(samples, ts)

    def ship_alert(self, record: dict) -> bool:
        """Enqueue one alert transition record (``{"kind": "alert", ...}``)
        — the :class:`~repro.obs.slo.AlertManager` calls ``submit`` via
        its attached exporter; this alias just names the intent."""
        return self.submit(record)


class FanoutExporter:
    """Submit each record to several exporters; succeed if any accepted it.

    ``serve --alert-webhook URL`` uses this to route SLO alert transition
    records to *both* the regular export pipeline and a dedicated webhook
    :class:`BackgroundExporter` — each target keeps its own queue, retry
    policy and drop accounting, so a dead webhook never steals records
    from the main pipeline (and vice versa).  Only ``submit``/``flush``/
    ``close`` are fanned out; targets may be shared with other owners
    (``owns`` marks which ones this fanout should close).
    """

    def __init__(self, targets: Sequence[Any], owns: Optional[Sequence[Any]] = None):
        self.targets = [t for t in targets if t is not None]
        if not self.targets:
            raise ValueError("FanoutExporter needs at least one target")
        self._owns = list(owns) if owns is not None else list(self.targets)

    def submit(self, record: dict) -> bool:
        accepted = False
        for target in self.targets:
            if target.submit(record):
                accepted = True
        return accepted

    def flush(self, timeout: float = 5.0) -> bool:
        ok = True
        for target in self.targets:
            if not target.flush(timeout):
                ok = False
        return ok

    def close(self, flush_timeout: float = 5.0) -> None:
        for target in self._owns:
            target.close(flush_timeout)
