"""Span-based query tracing and the bounded slow-query log.

A :class:`Trace` is a tree of :class:`Span` objects — query → plan
selection → index work → candidate pruning — identified by a 16-hex-digit
trace id.  The serving layer generates one id per request (or adopts the
client's ``X-Trace-Id`` header) and echoes it back, so a slow response can
be matched to its recorded trace.

Tracing is sampled/opt-in (counters are always on; spans are not): the
:class:`Tracer` records a trace when the client forces one (explain
requests, an explicit ``X-Trace-Id``) or when the sample rate fires.
Independently of sampling, every request whose latency crosses
``slow_threshold_ms`` lands in a bounded in-memory slow-query log, which
``GET /debug/slow`` exposes as JSON — the entry carries the full span tree
when the request happened to be traced, and a flat summary otherwise.
"""

from __future__ import annotations

import random
import re
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

#: Default latency threshold above which a query enters the slow log.
DEFAULT_SLOW_THRESHOLD_MS = 100.0

#: Default bound on retained slow-query entries.
DEFAULT_SLOW_LOG_SIZE = 128

#: The only shape a trace id may take — 16 lowercase hex digits.  Inbound
#: ``X-Trace-Id`` headers are validated against this before they can reach
#: the slow log, the exposition (exemplars) or the export stream.
TRACE_ID_RE = re.compile(r"[0-9a-f]{16}\Z")


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id."""
    return uuid.uuid4().hex[:16]


def valid_trace_id(trace_id: Optional[str]) -> bool:
    """Whether *trace_id* is a well-formed 16-hex-digit id."""
    return bool(trace_id) and TRACE_ID_RE.match(trace_id) is not None


class Span:
    """One timed operation; children are sub-operations."""

    __slots__ = ("name", "attrs", "children", "_started", "duration_ms")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.children: List["Span"] = []
        self._started = time.perf_counter()
        self.duration_ms: Optional[float] = None

    def annotate(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def finish(self) -> None:
        if self.duration_ms is None:
            self.duration_ms = (time.perf_counter() - self._started) * 1000

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 3) if self.duration_ms is not None else None,
            "attrs": self.attrs,
            "children": [child.to_dict() for child in self.children],
        }


def span_from_dict(data: Dict[str, Any]) -> Span:
    """Rebuild a finished :class:`Span` tree from its ``to_dict`` form.

    The cross-process return-path ships worker-side spans as plain dicts
    over the task pipe; the parent reconstitutes them with this and grafts
    them under the serving request's trace so EXPLAIN / ``/debug/slow`` /
    exported traces show where the work actually ran.
    """
    span = Span(str(data.get("name", "span")), data.get("attrs") or {})
    duration = data.get("duration_ms")
    span.duration_ms = float(duration) if duration is not None else 0.0
    for child in data.get("children") or []:
        span.children.append(span_from_dict(child))
    return span


class Trace:
    """A span tree under one trace id.

    Spans are opened with the :meth:`span` context manager; nesting follows
    the runtime call structure.  One trace belongs to one request thread —
    the span stack is not shared across threads.
    """

    def __init__(self, name: str, trace_id: Optional[str] = None):
        self.trace_id = trace_id or new_trace_id()
        self.root = Span(name)
        self._stack: List[Span] = [self.root]

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        span = Span(name, attrs)
        self._stack[-1].children.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.finish()
            self._stack.pop()

    def annotate(self, **attrs: Any) -> None:
        self._stack[-1].annotate(**attrs)

    def finish(self) -> None:
        self.root.finish()

    @property
    def duration_ms(self) -> Optional[float]:
        return self.root.duration_ms

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, **self.root.to_dict()}


class Tracer:
    """Sampling policy plus the slow-query log.

    ``sample_rate`` is the fraction of un-forced requests that get a span
    tree (0.0 = only forced traces).  ``record_slow`` is decoupled from
    sampling: the serving layer calls it for any request over the
    threshold, traced or not.
    """

    def __init__(
        self,
        sample_rate: float = 0.0,
        slow_threshold_ms: float = DEFAULT_SLOW_THRESHOLD_MS,
        slow_log_size: int = DEFAULT_SLOW_LOG_SIZE,
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        if slow_log_size < 1:
            raise ValueError("slow_log_size must be at least 1")
        self.sample_rate = sample_rate
        self.slow_threshold_ms = slow_threshold_ms
        self._lock = threading.Lock()
        self._slow: "deque[dict]" = deque(maxlen=slow_log_size)
        self._rng = random.Random()

    def start(
        self, name: str, trace_id: Optional[str] = None, force: bool = False
    ) -> Optional[Trace]:
        """A new :class:`Trace`, or ``None`` when sampling declines.

        A caller-provided ``trace_id`` forces the trace (the client asked
        to follow this request), as does ``force``.
        """
        if trace_id is not None or force:
            return Trace(name, trace_id)
        if self.sample_rate > 0.0 and self._rng.random() < self.sample_rate:
            return Trace(name)
        return None

    # -- slow-query log ------------------------------------------------------

    def note(
        self,
        elapsed_ms: float,
        entry: Dict[str, Any],
        trace: Optional[Trace] = None,
    ) -> bool:
        """Admit *entry* to the slow log if *elapsed_ms* crosses the
        threshold; attaches the span tree when a trace was recorded.
        Returns whether the entry was admitted."""
        if elapsed_ms < self.slow_threshold_ms:
            return False
        record = dict(entry)
        record["elapsed_ms"] = round(elapsed_ms, 3)
        record["recorded_at"] = time.time()
        if trace is not None:
            record["trace_id"] = trace.trace_id
            record["trace"] = trace.to_dict()
        with self._lock:
            self._slow.appendleft(record)
        return True

    def slow_queries(self) -> List[dict]:
        """Slow-log entries, most recent first."""
        with self._lock:
            return list(self._slow)

    def clear_slow_log(self) -> None:
        with self._lock:
            self._slow.clear()
