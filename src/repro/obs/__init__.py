"""Cross-layer observability: metrics, tracing, and query profiling.

The paper's entire argument is a cost model — match operations, main-memory
operations, and disk accesses (Table 1, Figures 8-13) — and the layers of
this repo each count their share in isolation: :class:`~repro.core.counters.
OpCounters` at the algorithm layer, :class:`~repro.storage.buffer_pool.
PoolStats` and pager :class:`~repro.storage.pager.IOStats` at the storage
layer, :class:`~repro.xksearch.cache.CacheStats` at the serving layer.
This package connects them:

* :mod:`repro.obs.metrics` — a process-global, thread-safe
  :class:`MetricsRegistry` (counters, gauges, log-bucketed histograms
  with OpenMetrics exemplars) and Prometheus text-format exposition;
* :mod:`repro.obs.tracing` — span-based query traces with per-request
  trace ids and a bounded slow-query log;
* :mod:`repro.obs.profile` — the EXPLAIN/profile breakdown
  (:class:`QueryProfile`) attached to an execution on request;
* :mod:`repro.obs.export` — trace/metrics export to JSONL files or an
  HTTP collector through a bounded background queue, including timed
  full-registry snapshots (:class:`SnapshotShipper`, optionally
  OTLP-shaped);
* :mod:`repro.obs.logging` — trace-id-correlated structured JSON logs
  with load-adaptive token-bucket sampling (:func:`set_log_sampling`);
* :mod:`repro.obs.slo` — declarative SLOs evaluated over ring-buffer
  trailing windows, Google-SRE multi-window burn-rate alerting, and the
  ``ok → pending → firing → resolved`` alert state machine surfaced at
  ``GET /alertz``, with window-ring persistence across restarts
  (``serve --slo-state``);
* :mod:`repro.obs.profiling` — a thread-sampling continuous profiler
  (folded flamegraph stacks at ``GET /debug/pprof``) plus tracemalloc
  heap snapshots (``GET /debug/heap``);
* :mod:`repro.obs.fleet` — scrape-time aggregation over the process
  pool's workers (``xks_worker_up{worker}`` and per-worker rollups),
  fed by heartbeat telemetry snapshots over the task pipes.

See docs/OBSERVABILITY.md for the metric catalog and schemas.
"""

from repro.obs.export import (
    BackgroundExporter,
    ExportSink,
    FanoutExporter,
    HttpCollectorSink,
    JsonlFileSink,
    MemorySink,
    MetricsExporter,
    SnapshotShipper,
    TraceExporter,
    otlp_metrics_record,
)
from repro.obs.fleet import FleetCollector
from repro.obs.logging import (
    LogSampler,
    configure_logging,
    current_trace_id,
    get_log_sampler,
    get_logger,
    reset_current_trace_id,
    set_current_trace_id,
    set_log_sampling,
)
from repro.obs.metrics import (
    Counter,
    CounterWindow,
    Gauge,
    Histogram,
    HistogramSnapshot,
    HistogramWindow,
    MetricsRegistry,
    Sample,
    exponential_buckets,
    get_registry,
    instrumentation_enabled,
    set_instrumentation_enabled,
    start_capture,
    stop_capture,
)
from repro.obs.profile import Phase, QueryProfile
from repro.obs.profiling import (
    SamplingProfiler,
    heap_snapshot,
    heap_tracking_active,
    merge_folded,
    render_folded,
    start_heap_tracking,
    stop_heap_tracking,
)
from repro.obs.slo import (
    Alert,
    AlertManager,
    BurnRule,
    SLODefinition,
    SLOEngine,
    WindowPolicy,
    default_slos,
    parse_slo,
)
from repro.obs.tracing import (
    Span,
    Trace,
    Tracer,
    new_trace_id,
    span_from_dict,
    valid_trace_id,
)

__all__ = [
    "BackgroundExporter",
    "ExportSink",
    "FanoutExporter",
    "FleetCollector",
    "HttpCollectorSink",
    "JsonlFileSink",
    "MemorySink",
    "MetricsExporter",
    "SnapshotShipper",
    "TraceExporter",
    "otlp_metrics_record",
    "LogSampler",
    "configure_logging",
    "current_trace_id",
    "get_log_sampler",
    "get_logger",
    "reset_current_trace_id",
    "set_current_trace_id",
    "set_log_sampling",
    "Counter",
    "CounterWindow",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "HistogramWindow",
    "MetricsRegistry",
    "Sample",
    "exponential_buckets",
    "get_registry",
    "instrumentation_enabled",
    "set_instrumentation_enabled",
    "start_capture",
    "stop_capture",
    "Phase",
    "QueryProfile",
    "SamplingProfiler",
    "heap_snapshot",
    "heap_tracking_active",
    "merge_folded",
    "render_folded",
    "start_heap_tracking",
    "stop_heap_tracking",
    "Alert",
    "AlertManager",
    "BurnRule",
    "SLODefinition",
    "SLOEngine",
    "WindowPolicy",
    "default_slos",
    "parse_slo",
    "Span",
    "Trace",
    "Tracer",
    "new_trace_id",
    "span_from_dict",
    "valid_trace_id",
]
