"""EXPLAIN/profile mode: per-query timing, op-count and I/O attribution.

A :class:`QueryProfile` is the structured answer to "where did this query's
time go?", in the paper's own cost dimensions: wall time per phase
(parse → plan → cache lookup → execute), match-operation counts
(:class:`~repro.core.counters.OpCounters`), and physical I/O attribution
(buffer-pool hits/misses, pager sequential/random reads).

The engine fills one in when asked (``engine.execute(..., profile=True)``);
the CLI's ``--explain`` flag and the server's ``/api/search?explain=1``
parameter surface it as JSON.  Profiling materializes the result tuple (a
lazy pipeline cannot be timed honestly), but the answer itself is
byte-identical to the non-profiled path — tested.

I/O attribution caveat: pager and pool counters are per-index, not
per-query, so under concurrent load the deltas attribute *somebody's* I/O
to this query.  Single-query contexts (CLI ``--explain``, benchmarks)
attribute exactly.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional


class Phase:
    """One timed phase of a query's execution."""

    __slots__ = ("name", "ms", "detail")

    def __init__(self, name: str, ms: float = 0.0, detail: Optional[Dict[str, Any]] = None):
        self.name = name
        self.ms = ms
        self.detail: Dict[str, Any] = detail or {}

    def as_dict(self) -> dict:
        entry = {"name": self.name, "ms": round(self.ms, 3)}
        if self.detail:
            entry["detail"] = self.detail
        return entry


class QueryProfile:
    """The EXPLAIN breakdown of one query execution."""

    def __init__(self, query: str, algorithm_requested: str = "auto", semantics: str = "slca"):
        self.query = query
        self.algorithm_requested = algorithm_requested
        self.algorithm: Optional[str] = None  # resolved by planning
        self.semantics = semantics
        self.phases: List[Phase] = []
        self.cache_hit = False
        self.result_count: Optional[int] = None
        self.plan: Optional[Dict[str, Any]] = None
        self.counters: Optional[Dict[str, int]] = None
        self.io: Optional[Dict[str, Any]] = None
        self.total_ms: float = 0.0

    @contextmanager
    def phase(self, name: str, **detail: Any) -> Iterator[Phase]:
        """Time a phase; the yielded :class:`Phase` accepts extra detail."""
        entry = Phase(name, detail=dict(detail))
        started = time.perf_counter()
        try:
            yield entry
        finally:
            entry.ms = (time.perf_counter() - started) * 1000
            self.phases.append(entry)

    def as_dict(self) -> dict:
        return {
            "query": self.query,
            "semantics": self.semantics,
            "algorithm_requested": self.algorithm_requested,
            "algorithm": self.algorithm,
            "cache_hit": self.cache_hit,
            "result_count": self.result_count,
            "total_ms": round(self.total_ms, 3),
            "phases": [phase.as_dict() for phase in self.phases],
            "plan": self.plan,
            "counters": self.counters,
            "io": self.io,
        }


@contextmanager
def maybe_phase(profile: Optional[QueryProfile], name: str, **detail: Any):
    """``profile.phase(...)`` when profiling, a no-op context otherwise."""
    if profile is None:
        yield None
    else:
        with profile.phase(name, **detail) as entry:
            yield entry
