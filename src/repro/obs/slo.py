"""SLO engine: declarative objectives, burn rates, multi-window alerting.

The paper's evaluation axis — |S1| frequency decades — is already wired
through ``xks_query_exec_ms{band,algorithm}``; this module is the layer
that *watches* those series.  It follows the Google SRE workbook's
multi-window multi-burn-rate recipe, entirely in-process (the windowed
ring buffers of :mod:`repro.obs.metrics` stand in for a TSDB):

* an :class:`SLODefinition` declares an objective — availability
  ("99.9% of HTTP search requests succeed") or per-band latency ("99% of
  band ``1000+`` executions finish within 250 ms"), parsed from a compact
  spec string (:func:`parse_slo`):

  - ``availability:99.9[:window=30d][:name=...]``
  - ``latency:p99<=250ms[:band=1000+][:algorithm=il][:window=30d][:name=...]``

* a :class:`WindowPolicy` holds the paired alerting windows.  A burn rate
  of 1 means the error budget is consumed exactly over the SLO window;
  the defaults page on 14.4× over (5 m AND 1 h) and warn on 6× over
  (1 h AND 6 h) — both windows must agree, which is what keeps a single
  latency spike from paging while still catching fast burns within
  minutes.  ``scaled()`` shrinks every duration for tests and CI;

* an :class:`AlertManager` runs each alert's state machine
  (``ok → pending → firing → resolved``): the burn condition must hold
  for the rule's for-duration before firing (hysteresis), and a resolved
  alert stays visible for a grace period before returning to ``ok``.
  Every transition emits a structured log event, updates the
  ``xks_alert_state{alert}`` gauge, and ships an alert record through
  the attached :class:`~repro.obs.export.BackgroundExporter`;

* an :class:`SLOEngine` ties it together: one daemon thread ticks every
  ``eval_interval`` seconds, records the ring-buffer windows, evaluates
  every SLO, maintains ``xks_slo_error_budget_remaining{slo}``, and
  serves the ``GET /alertz`` payload via :meth:`SLOEngine.status`.

Error-budget accounting is cumulative-since-start capped at the SLO
window: the rings hold up to the slow rule's long window (6 h by
default), so a "30 d" objective's remaining budget is computed over the
process lifetime — honest for a serving process that restarts on deploy,
and documented in docs/OBSERVABILITY.md.

**Persistence** (``serve --slo-state PATH``): :meth:`SLOEngine.save_state`
serializes each SLO's cumulative totals plus its window ring (timestamps
re-anchored to wall clock, since monotonic time does not survive a
restart) and :meth:`SLOEngine.load_state` restores them — the restored
cumulative totals become a *baseline* injected under every later
snapshot, so burn rates and error budgets resume mid-window instead of
resetting on deploy.  Entries older than the ring horizon are clamped
out on load; a state file older than the longest SLO window is ignored
entirely.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.logging import get_logger
from repro.obs.metrics import (
    HistogramSnapshot,
    HistogramWindow,
    MetricsRegistry,
    _RingWindow,
    get_registry,
)

_log = get_logger("slo")

#: Endpoints an availability SLO counts by default (the query surface).
DEFAULT_AVAILABILITY_ENDPOINTS = ("/search", "/api/search")

#: Alert states, in gauge order: ``xks_alert_state`` exposes the index.
ALERT_STATES = ("ok", "pending", "firing", "resolved")
STATE_OK, STATE_PENDING, STATE_FIRING, STATE_RESOLVED = ALERT_STATES

_DURATION_RE = re.compile(r"^(\d+(?:\.\d+)?)(s|m|h|d)$")
_DURATION_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
_PERCENTILE_RE = re.compile(r"^p(\d{1,2}(?:\.\d+)?)<=(\d+(?:\.\d+)?)ms$")
_NAME_RE = re.compile(r"^[a-zA-Z0-9_.:+/-]+$")


def parse_duration(text: str) -> float:
    """``"30d"`` / ``"6h"`` / ``"5m"`` / ``"90s"`` → seconds."""
    match = _DURATION_RE.match(text.strip())
    if not match:
        raise ValueError(f"bad duration {text!r} (want e.g. 30d, 6h, 5m, 90s)")
    return float(match.group(1)) * _DURATION_UNITS[match.group(2)]


@dataclass(frozen=True)
class SLODefinition:
    """One objective over one metric stream.

    ``objective`` is the good-event fraction (0.999 = "99.9% good");
    the error budget is its complement.  ``kind`` selects the source:

    * ``availability`` — ``xks_http_requests_total{endpoint,status}``,
      good = ``status="ok"``, restricted to ``endpoints``;
    * ``latency`` — ``xks_query_exec_ms{band,algorithm}``, good =
      execution time ≤ ``threshold_ms`` (bucket-quantized), optionally
      restricted to one frequency ``band`` and/or ``algorithm``.
    """

    name: str
    kind: str  # "availability" | "latency"
    objective: float
    window_s: float = 30 * 86400.0
    threshold_ms: Optional[float] = None
    band: Optional[str] = None
    algorithm: Optional[str] = None
    endpoints: Tuple[str, ...] = DEFAULT_AVAILABILITY_ENDPOINTS

    def __post_init__(self):
        if self.kind not in ("availability", "latency"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be a fraction in (0, 1)")
        if self.kind == "latency" and not self.threshold_ms:
            raise ValueError("latency SLOs need a threshold_ms")
        if self.window_s <= 0:
            raise ValueError("window must be positive")
        if not _NAME_RE.match(self.name):
            raise ValueError(f"bad SLO name {self.name!r}")

    @property
    def budget(self) -> float:
        """The error budget: the tolerated bad-event fraction."""
        return 1.0 - self.objective

    def describe(self) -> dict:
        out = {
            "name": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "window_days": round(self.window_s / 86400.0, 4),
        }
        if self.kind == "latency":
            out["threshold_ms"] = self.threshold_ms
            if self.band is not None:
                out["band"] = self.band
            if self.algorithm is not None:
                out["algorithm"] = self.algorithm
        else:
            out["endpoints"] = list(self.endpoints)
        return out


def parse_slo(spec: str) -> SLODefinition:
    """Parse one compact SLO spec (see module docstring for the grammar).

    Examples::

        availability:99.9
        availability:99.95:window=7d:name=api-availability
        latency:p99<=250ms
        latency:p99<=500ms:band=1000+:window=30d
        latency:p95<=50ms:algorithm=il:name=il-fast
    """
    tokens = [token.strip() for token in spec.split(":") if token.strip()]
    if not tokens:
        raise ValueError("empty SLO spec")
    kind = tokens[0].lower()
    fields: Dict[str, object] = {"kind": kind}
    rest = tokens[1:]
    if kind == "availability":
        if not rest:
            raise ValueError("availability SLO needs a target, e.g. 99.9")
        try:
            target = float(rest[0])
        except ValueError:
            raise ValueError(f"bad availability target {rest[0]!r}") from None
        if not 0.0 < target < 100.0:
            raise ValueError("availability target must be in (0, 100) percent")
        fields["objective"] = target / 100.0
        rest = rest[1:]
    elif kind == "latency":
        if not rest:
            raise ValueError("latency SLO needs an objective, e.g. p99<=250ms")
        match = _PERCENTILE_RE.match(rest[0].replace(" ", ""))
        if not match:
            raise ValueError(
                f"bad latency objective {rest[0]!r} (want e.g. p99<=250ms)"
            )
        fields["objective"] = float(match.group(1)) / 100.0
        fields["threshold_ms"] = float(match.group(2))
        rest = rest[1:]
    else:
        raise ValueError(f"unknown SLO kind {kind!r}")
    for token in rest:
        if "=" not in token:
            raise ValueError(f"bad SLO option {token!r} (want key=value)")
        key, value = token.split("=", 1)
        key = key.strip().lower()
        value = value.strip()
        if key == "window":
            fields["window_s"] = parse_duration(value)
        elif key == "name":
            fields["name"] = value
        elif key == "band" and kind == "latency":
            fields["band"] = value
        elif key == "algorithm" and kind == "latency":
            fields["algorithm"] = value
        elif key == "endpoint" and kind == "availability":
            fields["endpoints"] = tuple(
                endpoint for endpoint in value.split(",") if endpoint
            )
        else:
            raise ValueError(f"unknown SLO option {key!r} for kind {kind!r}")
    if "name" not in fields:
        if kind == "availability":
            fields["name"] = f"availability-{fields['objective'] * 100:g}"
        else:
            parts = [
                "latency",
                f"p{fields['objective'] * 100:g}",
                f"{fields['threshold_ms']:g}ms",
            ]
            if fields.get("band"):
                parts.append(f"band-{fields['band']}")
            if fields.get("algorithm"):
                parts.append(str(fields["algorithm"]))
            fields["name"] = "-".join(parts)
    return SLODefinition(**fields)  # type: ignore[arg-type]


def default_slos() -> List[SLODefinition]:
    """The objectives ``serve`` evaluates unless ``--slo`` overrides them."""
    return [
        parse_slo("availability:99.9:name=search-availability"),
        parse_slo("latency:p99<=100ms:name=exec-latency"),
        parse_slo("latency:p99<=250ms:band=1000+:name=exec-latency-heavy"),
    ]


@dataclass(frozen=True)
class BurnRule:
    """One paired-window burn-rate condition.

    The alert condition is ``burn(short) >= max_burn AND burn(long) >=
    max_burn`` — the long window proves the burn is sustained, the short
    window makes the alert resolve quickly once the burn stops.
    """

    short_s: float
    long_s: float
    max_burn: float
    severity: str
    for_s: float = 0.0

    def scaled(self, factor: float) -> "BurnRule":
        return replace(
            self,
            short_s=self.short_s * factor,
            long_s=self.long_s * factor,
            for_s=self.for_s * factor,
        )


@dataclass(frozen=True)
class WindowPolicy:
    """The burn-rate rule set plus the ring-buffer geometry."""

    rules: Tuple[BurnRule, ...] = (
        BurnRule(short_s=300.0, long_s=3600.0, max_burn=14.4,
                 severity="fast", for_s=60.0),
        BurnRule(short_s=3600.0, long_s=21600.0, max_burn=6.0,
                 severity="slow", for_s=300.0),
    )
    resolution_s: float = 15.0

    def __post_init__(self):
        if not self.rules:
            raise ValueError("a WindowPolicy needs at least one rule")
        severities = [rule.severity for rule in self.rules]
        if len(set(severities)) != len(severities):
            raise ValueError("burn-rule severities must be unique")

    @property
    def horizon_s(self) -> float:
        return max(rule.long_s for rule in self.rules)

    def window_lengths(self) -> List[float]:
        lengths: List[float] = []
        for rule in self.rules:
            for window in (rule.short_s, rule.long_s):
                if window not in lengths:
                    lengths.append(window)
        return sorted(lengths)

    def scaled(self, factor: float) -> "WindowPolicy":
        """Every duration multiplied by *factor* (CI uses tiny factors so
        a fast burn fires and resolves within seconds)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return WindowPolicy(
            rules=tuple(rule.scaled(factor) for rule in self.rules),
            resolution_s=self.resolution_s * factor,
        )


class Alert:
    """One alert's state machine (per SLO × burn rule).

    ``update`` applies the for-duration hysteresis: the condition must
    hold continuously for ``rule.for_s`` before ``pending`` promotes to
    ``firing``, and a ``resolved`` alert stays visible for
    ``resolved_keep_s`` before returning to ``ok``.  Returns the
    ``(old_state, new_state)`` transition when one happened.
    """

    def __init__(self, slo: SLODefinition, rule: BurnRule,
                 resolved_keep_s: float = 300.0):
        self.slo = slo
        self.rule = rule
        self.name = f"{slo.name}:{rule.severity}"
        self.state = STATE_OK
        self.resolved_keep_s = resolved_keep_s
        self._since: Optional[float] = None  # state entry time (monotonic)
        self.burn_short = 0.0
        self.burn_long = 0.0

    def update(
        self, condition: bool, now: float
    ) -> Optional[Tuple[str, str]]:
        old = self.state
        if condition:
            if self.state in (STATE_OK, STATE_RESOLVED):
                self.state = STATE_PENDING
                self._since = now
            if (
                self.state == STATE_PENDING
                and now - (self._since if self._since is not None else now)
                >= self.rule.for_s
            ):
                self.state = STATE_FIRING
                self._since = now
        else:
            if self.state == STATE_PENDING:
                self.state = STATE_OK
                self._since = None
            elif self.state == STATE_FIRING:
                self.state = STATE_RESOLVED
                self._since = now
            elif (
                self.state == STATE_RESOLVED
                and self._since is not None
                and now - self._since >= self.resolved_keep_s
            ):
                self.state = STATE_OK
                self._since = None
        return (old, self.state) if self.state != old else None

    def state_index(self) -> int:
        return ALERT_STATES.index(self.state)

    def describe(self, now: float) -> dict:
        return {
            "alert": self.name,
            "slo": self.slo.name,
            "severity": self.rule.severity,
            "state": self.state,
            "since_s": (
                round(now - self._since, 3) if self._since is not None else None
            ),
            "for_s": self.rule.for_s,
            "max_burn": self.rule.max_burn,
            "short_window_s": self.rule.short_s,
            "long_window_s": self.rule.long_s,
            "burn_short": round(self.burn_short, 4),
            "burn_long": round(self.burn_long, 4),
        }


class AlertManager:
    """Owns every alert, the state gauge, logs, and exported records."""

    def __init__(
        self,
        registry: MetricsRegistry,
        exporter=None,
        resolved_keep_s: float = 300.0,
    ):
        self._registry = registry
        self._exporter = exporter
        self._resolved_keep_s = resolved_keep_s
        self._alerts: "Dict[str, Alert]" = {}
        self._state_family = registry.gauge(
            "xks_alert_state",
            "Alert state machine position "
            "(0=ok, 1=pending, 2=firing, 3=resolved).",
            labelnames=("alert",),
        )
        self.transitions = 0

    def attach_exporter(self, exporter) -> None:
        self._exporter = exporter

    def alert_for(self, slo: SLODefinition, rule: BurnRule) -> Alert:
        key = f"{slo.name}:{rule.severity}"
        alert = self._alerts.get(key)
        if alert is None:
            alert = Alert(slo, rule, resolved_keep_s=self._resolved_keep_s)
            self._alerts[key] = alert
            self._state_family.labels(alert=key).set(0)
        return alert

    def evaluate(
        self,
        slo: SLODefinition,
        rule: BurnRule,
        burn_short: float,
        burn_long: float,
        budget_remaining: float,
        now: float,
    ) -> Optional[dict]:
        """Feed one rule's burn rates; returns the transition record, if
        a transition happened (the record was also logged + exported)."""
        alert = self.alert_for(slo, rule)
        alert.burn_short = burn_short
        alert.burn_long = burn_long
        condition = burn_short >= rule.max_burn and burn_long >= rule.max_burn
        transition = alert.update(condition, now)
        self._state_family.labels(alert=alert.name).set(alert.state_index())
        if transition is None:
            return None
        self.transitions += 1
        old, new = transition
        record = {
            "kind": "alert",
            "ts": time.time(),
            "alert": alert.name,
            "slo": slo.name,
            "severity": rule.severity,
            "from": old,
            "to": new,
            "burn_short": round(burn_short, 4),
            "burn_long": round(burn_long, 4),
            "short_window_s": rule.short_s,
            "long_window_s": rule.long_s,
            "max_burn": rule.max_burn,
            "error_budget_remaining": round(budget_remaining, 6),
        }
        log = _log.warning if new == STATE_FIRING else _log.info
        log("alert_transition", **{k: v for k, v in record.items() if k != "kind"})
        if self._exporter is not None:
            # Non-blocking: drops are counted by the exporter, never felt
            # by the evaluation thread.
            self._exporter.submit(record)
        return record

    def alerts(self) -> List[Alert]:
        return list(self._alerts.values())

    def firing(self) -> List[Alert]:
        return [a for a in self._alerts.values() if a.state == STATE_FIRING]


class _PairWindow(_RingWindow):
    """Ring window whose payload is a ``(bad, total)`` cumulative pair."""

    def __init__(self, source: Callable[[], Tuple[float, float]],
                 horizon_s: float, resolution_s: float):
        self._source = source
        super().__init__(horizon_s, resolution_s)

    def _current(self) -> Tuple[float, float]:
        return self._source()

    def delta(
        self, window_s: float, now: Optional[float] = None
    ) -> Tuple[float, float]:
        now = time.monotonic() if now is None else now
        current = self._current()
        base, _ = self._base_at(now - window_s)
        if base is None:
            base = (0.0, 0.0)
        return (
            max(0.0, current[0] - base[0]),
            max(0.0, current[1] - base[1]),
        )


def _snap_to_json(snap: HistogramSnapshot) -> dict:
    return {
        "bounds": list(snap.bounds),
        "counts": list(snap.counts),
        "sum": snap.sum,
        "count": snap.count,
    }


def _snap_from_json(data: dict) -> HistogramSnapshot:
    return HistogramSnapshot(
        tuple(float(b) for b in data["bounds"]),
        tuple(int(c) for c in data["counts"]),
        float(data["sum"]),
        int(data["count"]),
    )


class _SloSource:
    """Good/total event accounting for one SLO, with trailing windows.

    A restored *baseline* (the previous process's cumulative totals) is
    injected inside the snapshot functions themselves — the single point
    both the ring windows and ``bad_total(None)`` read through — so one
    restore makes every downstream consumer (burn rates, error budget)
    continuous across the restart, and a later save chains the baseline
    forward.
    """

    def __init__(self, slo: SLODefinition, registry: MetricsRegistry,
                 horizon_s: float, resolution_s: float):
        self.slo = slo
        self._registry = registry
        self._baseline = None  # HistogramSnapshot | (bad, total) | None
        if slo.kind == "latency":
            self._window = HistogramWindow(
                self._latency_snapshot, horizon_s, resolution_s
            )
        else:
            self._window = _PairWindow(
                self._availability_snapshot, horizon_s, resolution_s
            )
        registry.register_window(self._window)

    def close(self) -> None:
        self._registry.unregister_window(self._window)

    # -- cumulative snapshots ------------------------------------------------

    def _latency_children(self):
        metric = self._registry.get_metric("xks_query_exec_ms")
        items = getattr(metric, "items", None) if metric is not None else None
        if not callable(items):
            return []
        slo = self.slo
        out = []
        for labels, child in items():
            if slo.band is not None and labels.get("band") != slo.band:
                continue
            if (
                slo.algorithm is not None
                and labels.get("algorithm") != slo.algorithm
            ):
                continue
            out.append(child)
        return out

    def _latency_snapshot(self) -> HistogramSnapshot:
        merged: Optional[HistogramSnapshot] = None
        for child in self._latency_children():
            snap = child.snapshot()
            merged = snap if merged is None else merged.add(snap)
        if merged is None:
            # No matching child yet: an empty snapshot with canonical
            # bounds, so diffs stay well-formed once children appear.
            from repro.xksearch.engine import _EXEC_BUCKETS_MS

            merged = HistogramSnapshot.zero(tuple(_EXEC_BUCKETS_MS))
        baseline = self._baseline
        if baseline is not None:
            try:
                merged = merged.add(baseline)
            except ValueError:
                # The bucket layout changed across the restart: the
                # carry-over cannot merge, so drop it rather than poison
                # every later window diff.
                _log.warning("slo_baseline_bounds_mismatch", slo=self.slo.name)
                self._baseline = None
        return merged

    def _availability_snapshot(self) -> Tuple[float, float]:
        metric = self._registry.get_metric("xks_http_requests_total")
        items = getattr(metric, "items", None) if metric is not None else None
        bad = 0.0
        total = 0.0
        if callable(items):
            endpoints = set(self.slo.endpoints)
            for labels, child in items():
                if labels.get("endpoint") not in endpoints:
                    continue
                value = child.value
                total += value
                if labels.get("status") != "ok":
                    bad += value
        baseline = self._baseline
        if baseline is not None:
            bad += baseline[0]
            total += baseline[1]
        return (bad, total)

    # -- persistence ---------------------------------------------------------

    def dump(self, now_mono: float, now_wall: float) -> dict:
        """Serializable state: cumulative totals (baseline included, so
        restarts chain) plus the ring, timestamps re-anchored to wall
        clock (``wall_ts = now_wall - (now_mono - mono_ts)``)."""
        latency = self.slo.kind == "latency"
        if latency:
            cumulative: object = _snap_to_json(self._latency_snapshot())
        else:
            bad, total = self._availability_snapshot()
            cumulative = [bad, total]
        ring = []
        for mono_ts, payload in self._window.dump():
            wall_ts = now_wall - (now_mono - mono_ts)
            ring.append(
                [wall_ts, _snap_to_json(payload) if latency else list(payload)]
            )
        return {"kind": self.slo.kind, "cumulative": cumulative, "ring": ring}

    def restore(
        self, data: dict, now_mono: float, now_wall: float, horizon_s: float
    ) -> None:
        """Install *data* (from :meth:`dump`) as this source's baseline +
        ring.  Ring entries older than *horizon_s* are clamped out;
        malformed payloads raise (the caller skips that one SLO)."""
        if data.get("kind") != self.slo.kind:
            raise ValueError(
                f"saved kind {data.get('kind')!r} != {self.slo.kind!r}"
            )
        latency = self.slo.kind == "latency"
        if latency:
            self._baseline = _snap_from_json(data["cumulative"])
        else:
            bad, total = data["cumulative"]
            self._baseline = (float(bad), float(total))
        items = []
        for wall_ts, payload in data.get("ring", ()):
            age = now_wall - float(wall_ts)
            if age < 0 or age > horizon_s:
                continue
            mono_ts = now_mono - age
            if latency:
                items.append((mono_ts, _snap_from_json(payload)))
            else:
                items.append((mono_ts, (float(payload[0]), float(payload[1]))))
        self._window.restore(items)

    # -- windowed + cumulative good/bad --------------------------------------

    def record(self, now: Optional[float] = None) -> None:
        self._window.record(now)

    def bad_total(self, window_s: Optional[float],
                  now: Optional[float] = None) -> Tuple[float, float]:
        """``(bad, total)`` events — over the trailing window, or
        cumulative since start when ``window_s`` is None."""
        slo = self.slo
        if slo.kind == "latency":
            snap = (
                self._latency_snapshot()
                if window_s is None
                else self._window.delta(window_s, now)
            )
            total = float(snap.count)
            good = float(snap.count_le(slo.threshold_ms))
            return (max(0.0, total - good), total)
        if window_s is None:
            bad, total = self._availability_snapshot()
            return (float(bad), float(total))
        return self._window.delta(window_s, now)


class SLOEngine:
    """Evaluates every SLO on a timer and keeps the alert state current.

    One background daemon thread per engine; ``evaluate()`` can also be
    called directly (tests, CLI one-shots).  All timing flows through an
    injectable monotonic ``clock`` so the state machine is deterministic
    under test.
    """

    def __init__(
        self,
        slos: Optional[Sequence[SLODefinition]] = None,
        registry: Optional[MetricsRegistry] = None,
        policy: Optional[WindowPolicy] = None,
        eval_interval: float = 5.0,
        exporter=None,
        resolved_keep_s: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.registry = registry if registry is not None else get_registry()
        self.policy = policy if policy is not None else WindowPolicy()
        self.slos: List[SLODefinition] = (
            list(slos) if slos is not None else default_slos()
        )
        names = [slo.name for slo in self.slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {names}")
        self.eval_interval = eval_interval
        self._clock = clock
        self.alerts = AlertManager(
            self.registry, exporter=exporter, resolved_keep_s=resolved_keep_s
        )
        self._budget_family = self.registry.gauge(
            "xks_slo_error_budget_remaining",
            "Fraction of the SLO error budget left "
            "(1 = untouched, 0 = exhausted; cumulative since start).",
            labelnames=("slo",),
        )
        self._eval_counter = self.registry.counter(
            "xks_slo_evaluations_total",
            "SLO evaluation ticks run by the engine.",
        )
        self._sources = [
            _SloSource(slo, self.registry, self.policy.horizon_s,
                       self.policy.resolution_s)
            for slo in self.slos
        ]
        self._started_monotonic = self._clock()
        self._lock = threading.Lock()
        self._last_status: List[dict] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        # Pre-create every alert (and its gauge child) so /alertz and
        # /metrics show the full surface from the first scrape.
        for slo in self.slos:
            for rule in self.policy.rules:
                self.alerts.alert_for(slo, rule)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SLOEngine":
        if self._thread is None and not self._closed:
            self._thread = threading.Thread(
                target=self._run, name="xks-slo-engine", daemon=True
            )
            self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.eval_interval):
            try:
                self.evaluate()
            except Exception as exc:  # pragma: no cover - belt and braces
                _log.error("slo_evaluate_failed", error=repr(exc))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        for source in self._sources:
            source.close()

    def __enter__(self) -> "SLOEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def attach_exporter(self, exporter) -> None:
        """Route alert transition records through *exporter* (a
        :class:`~repro.obs.export.BackgroundExporter`)."""
        self.alerts.attach_exporter(exporter)

    # -- persistence ---------------------------------------------------------

    #: State-file schema version; bumped on incompatible layout changes.
    STATE_VERSION = 1

    def save_state(self, path: str) -> None:
        """Write every SLO's cumulative totals + window rings to *path*
        (atomic rename), wall-clock anchored so a restarted process can
        resume its burn-rate windows."""
        now_mono = self._clock()
        now_wall = time.time()
        payload = {
            "version": self.STATE_VERSION,
            "saved_at": now_wall,
            "horizon_s": self.policy.horizon_s,
            "slos": {
                slo.name: source.dump(now_mono, now_wall)
                for slo, source in zip(self.slos, self._sources)
            },
        }
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
        _log.info("slo_state_saved", path=path, slos=len(payload["slos"]))

    def load_state(self, path: str, max_age_s: Optional[float] = None) -> int:
        """Restore state saved by :meth:`save_state`; returns how many
        SLOs were restored.  Missing/corrupt files and version mismatches
        are non-fatal (0); a file older than *max_age_s* (default: the
        longest SLO window) is ignored — every windowed event it carries
        would be outside any objective's horizon anyway.  Individual SLOs
        whose saved shape no longer matches (renamed, kind changed,
        bucket layout changed) are skipped, the rest restore."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            return 0
        except (OSError, ValueError) as exc:
            _log.warning("slo_state_unreadable", path=path, error=repr(exc))
            return 0
        if not isinstance(data, dict) or data.get("version") != self.STATE_VERSION:
            _log.warning(
                "slo_state_version_mismatch",
                path=path,
                found=data.get("version") if isinstance(data, dict) else None,
            )
            return 0
        now_wall = time.time()
        age = now_wall - float(data.get("saved_at", 0.0))
        limit = (
            max_age_s
            if max_age_s is not None
            else max(slo.window_s for slo in self.slos)
        )
        if age < 0 or age > limit:
            _log.warning(
                "slo_state_stale", path=path,
                age_s=round(age, 1), limit_s=round(limit, 1),
            )
            return 0
        now_mono = self._clock()
        horizon_s = self.policy.horizon_s
        saved = data.get("slos") or {}
        restored = 0
        for slo, source in zip(self.slos, self._sources):
            entry = saved.get(slo.name)
            if entry is None:
                continue
            try:
                source.restore(entry, now_mono, now_wall, horizon_s)
                restored += 1
            except (KeyError, TypeError, ValueError) as exc:
                _log.warning(
                    "slo_state_restore_failed", slo=slo.name, error=repr(exc)
                )
        _log.info(
            "slo_state_loaded", path=path, restored=restored,
            age_s=round(age, 1),
        )
        return restored

    # -- evaluation ----------------------------------------------------------

    @staticmethod
    def _burn(bad: float, total: float, budget: float) -> float:
        """Burn rate: error rate as a multiple of the budget.  No traffic
        means no burn (an idle service is not failing its users)."""
        if total <= 0:
            return 0.0
        return (bad / total) / budget

    def evaluate(self, now: Optional[float] = None) -> List[dict]:
        """One tick: snapshot windows, compute burn rates, update alerts.

        Returns the per-SLO status blocks (the ``/alertz`` payload body).
        """
        now = self._clock() if now is None else now
        self._eval_counter.inc()
        self.registry.record_windows(now)
        status: List[dict] = []
        for slo, source in zip(self.slos, self._sources):
            source.record(now)
            cum_bad, cum_total = source.bad_total(None)
            budget = slo.budget
            # Cumulative-since-start budget, capped at the SLO window by
            # construction (a process younger than 30 d has seen fewer
            # than 30 d of events).
            if cum_total > 0:
                consumed = (cum_bad / cum_total) / budget
            else:
                consumed = 0.0
            budget_remaining = 1.0 - consumed
            self._budget_family.labels(slo=slo.name).set(
                max(0.0, budget_remaining)
            )
            burns: Dict[float, float] = {}
            for window_s in self.policy.window_lengths():
                bad, total = source.bad_total(window_s, now)
                burns[window_s] = self._burn(bad, total, budget)
            alerts = []
            for rule in self.policy.rules:
                self.alerts.evaluate(
                    slo,
                    rule,
                    burns[rule.short_s],
                    burns[rule.long_s],
                    budget_remaining,
                    now,
                )
                alerts.append(self.alerts.alert_for(slo, rule).describe(now))
            block = slo.describe()
            block.update(
                {
                    "good": cum_total - cum_bad,
                    "total": cum_total,
                    "error_rate": (
                        round(cum_bad / cum_total, 6) if cum_total else 0.0
                    ),
                    "error_budget_remaining": round(budget_remaining, 6),
                    "burn_rates": {
                        _format_window(w): round(b, 4)
                        for w, b in sorted(burns.items())
                    },
                    "alerts": alerts,
                }
            )
            status.append(block)
        with self._lock:
            self._last_status = status
        return status

    # -- read side -----------------------------------------------------------

    def status(self, evaluate: bool = False) -> dict:
        """The ``/alertz`` payload.  Serves the last tick's view by
        default; ``evaluate=True`` forces a fresh tick first."""
        with self._lock:
            cached = list(self._last_status)
        if evaluate or not cached:
            cached = self.evaluate()
        return {
            "ts": round(time.time(), 3),
            "enabled": True,
            "eval_interval_s": self.eval_interval,
            "uptime_s": round(self._clock() - self._started_monotonic, 3),
            "policy": {
                "resolution_s": self.policy.resolution_s,
                "rules": [
                    {
                        "severity": rule.severity,
                        "short_window_s": rule.short_s,
                        "long_window_s": rule.long_s,
                        "max_burn": rule.max_burn,
                        "for_s": rule.for_s,
                    }
                    for rule in self.policy.rules
                ],
            },
            "transitions": self.alerts.transitions,
            "slos": cached,
        }

    def summary(self) -> dict:
        """The compact ``/statz`` section: one line per SLO + alert."""
        with self._lock:
            cached = list(self._last_status)
        return {
            "slos": {
                block["name"]: {
                    "error_budget_remaining": block["error_budget_remaining"],
                    "total": block["total"],
                }
                for block in cached
            },
            "alerts": {
                alert.name: alert.state for alert in self.alerts.alerts()
            },
            "transitions": self.alerts.transitions,
        }


def _format_window(seconds: float) -> str:
    """Seconds → the most readable unit (``300 → "5m"``)."""
    for unit, factor in (("d", 86400.0), ("h", 3600.0), ("m", 60.0)):
        if seconds >= factor and seconds % factor == 0:
            return f"{int(seconds / factor)}{unit}"
    if seconds >= 1 and float(seconds).is_integer():
        return f"{int(seconds)}s"
    return f"{seconds:g}s"
