"""Legacy setup shim.

The offline environment has no ``wheel`` package, so PEP 517 editable
installs (which require ``bdist_wheel``) fail; this shim lets
``pip install -e .`` use the legacy ``setup.py develop`` path.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
